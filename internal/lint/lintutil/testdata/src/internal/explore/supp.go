// Package explore exercises //lint:ignore precision: a directive
// silences exactly the named analyzer on the annotated line and nothing
// else. The import path matches the determinism analyzer's default
// scope, and the package has no width guard, so fpwidth is live too.
package explore

import "time"

// Mixed triggers determinism (time.Now) and fpwidth (unguarded dynamic
// shift) on one line; the directive names only determinism.
func Mixed(p int) uint64 {
	//lint:ignore anonlint/determinism fixture: wall time is display-only here
	return uint64(time.Now().Nanosecond()) | 1<<uint(p) // mark:mixed
}

// WrongName names the other analyzer: determinism still fires.
func WrongName() time.Time {
	//lint:ignore anonlint/fpwidth fixture: names the wrong analyzer
	return time.Now() // mark:wrongname
}

// NoReason is malformed — a directive without a reason suppresses
// nothing.
func NoReason() time.Time {
	//lint:ignore anonlint/determinism
	return time.Now() // mark:noreason
}

// Both silences the two analyzers with one comma-separated directive.
func Both(p int) uint64 {
	//lint:ignore anonlint/determinism,anonlint/fpwidth fixture: both halves justified
	return uint64(time.Now().Nanosecond()) | 1<<uint(p) // mark:both
}

// Spanned regression-tests statement-span suppression: the directive
// sits above a multi-line statement and the finding is reported two
// lines further down, on the time.Now call itself. Purely line-based
// matching (directive line and line+1 only) silently fails here.
func Spanned() int64 {
	//lint:ignore anonlint/determinism fixture: spans the whole statement
	return max(
		0,
		time.Now().UnixNano(), // mark:spanned
	)
}

// SpannedTrailing is the same shape with a trailing directive on the
// statement's first line; the finding is again on a later line.
func SpannedTrailing() int64 {
	return max( //lint:ignore anonlint/determinism fixture: trailing on a multi-line statement
		0,
		time.Now().UnixNano(), // mark:spannedtrailing
	)
}
