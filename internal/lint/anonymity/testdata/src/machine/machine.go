// Package machine is a stub of the system layer for the anonymity
// fixtures: the executing System and the observer-side StepInfo record.
package machine

// System executes machines against the shared memory.
type System struct {
	procs int
}

// StepInfo is ghost state about one executed step, for observers only.
type StepInfo struct {
	Proc       int
	ReadFrom   int
	PrevWriter int
}
