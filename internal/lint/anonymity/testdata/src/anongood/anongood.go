// Package anongood holds a clean machine implementation next to a
// non-machine type: neither produces findings.
package anongood

import "canon"

// Scanner is identity-free: input value and local state only, exactly
// what the identical-program discipline allows.
type Scanner struct {
	input uint64
	view  []uint64
	done  bool
}

// NewScanner's parameters are the machine's input and the register
// count — neither is a processor identity.
func NewScanner(input uint64, registers int) *Scanner {
	return &Scanner{input: input, view: make([]uint64, registers)}
}

func (s *Scanner) Pending() []int {
	if s.done {
		return nil
	}
	ops := make([]int, len(s.view))
	for i := range ops {
		ops[i] = i
	}
	return ops
}

func (s *Scanner) Advance(vals []uint64) {
	copy(s.view, vals)
	s.done = true
}

func (s *Scanner) Done() bool { return s.done }

// SymmetryClass implements the canon.Symmetric contract: machines may
// describe themselves to the symmetry layer — they just must not call
// into it.
func (s *Scanner) SymmetryClass() string { return "scanner" }

// Config is not machine-shaped, so its "id" field and constructor
// parameter are not anonymity violations.
type Config struct {
	id int
}

// NewConfig takes an id but builds no machine.
func NewConfig(id int) Config { return Config{id: id} }

// OrbitCount is observer-side analysis code, not a machine method:
// calling the symmetry layer here is allowed.
func OrbitCount() int { return canon.GroupSize() }
