// Package anonmem is a stub of the register file for the anonymity
// fixtures.
package anonmem

// Word is the register value type.
type Word uint64

// Memory is the shared register file.
type Memory struct {
	cells []Word
}

// ReadResult carries the read value plus ghost last-writer identity.
type ReadResult struct {
	Value      Word
	LastWriter int
}
