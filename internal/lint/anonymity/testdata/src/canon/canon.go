// Package canon is a self-contained stand-in for the repository's
// symmetry-reduction layer: the analyzer flags machine methods that call
// into any package whose import path ends in "canon".
package canon

// Hasher mirrors the real package's per-state fingerprint surface.
type Hasher struct{}

// Fingerprint is the quotient map machines must never invoke.
func (Hasher) Fingerprint(aux uint64) uint64 { return aux }

// GroupSize reports the symmetry-group order.
func GroupSize() int { return 1 }
