// Package anonbad seeds deliberate anonymity violations into a type
// implementing the machine step protocol: every identity leak the
// analyzer knows about appears once.
package anonbad

import (
	"anonmem"
	"canon"
	"machine"
)

// Leaky has the Pending/Advance/Done shape but smuggles identity in
// through every door the model closes.
type Leaky struct {
	pid   int             // want `machine Leaky stores a processor-identity field "pid"`
	mem   *anonmem.Memory // want `machine Leaky holds a reference to the shared memory`
	sys   *machine.System // want `machine Leaky holds a reference to the executing System`
	input uint64
	done  bool
}

func NewLeaky(pid int, input uint64) *Leaky { // want `machine constructor NewLeaky takes a processor-identity parameter "pid"`
	return &Leaky{pid: pid, input: input}
}

func (l *Leaky) Pending() []int { return nil }

func (l *Leaky) Advance(info machine.StepInfo) {
	if info.Proc == l.pid { // want `machine step logic reads ghost identity StepInfo\.Proc`
		l.done = true
	}
}

func (l *Leaky) Observe(r anonmem.ReadResult) int {
	return r.LastWriter // want `machine step logic reads ghost identity ReadResult\.LastWriter`
}

func (l *Leaky) Orbit() uint64 {
	if canon.GroupSize() > 1 { // want `machine step logic calls into the canon symmetry layer \(GroupSize\)`
		return 0
	}
	var h canon.Hasher
	return h.Fingerprint(l.input) // want `machine step logic calls into the canon symmetry layer \(Fingerprint\)`
}

func (l *Leaky) Done() bool { return l.done }
