package anonymity_test

import (
	"testing"

	"anonshm/internal/lint/anonymity"
	"anonshm/internal/lint/linttest"
)

// TestGolden seeds a deliberately identity-leaking machine (anonbad) and
// checks every leak is flagged: the pid field, the memory and System
// references, the constructor's pid parameter, and the ghost
// StepInfo.Proc / ReadResult.LastWriter reads inside step logic. The
// clean machine and the non-machine Config type in anongood produce no
// findings.
func TestGolden(t *testing.T) {
	linttest.Run(t, "testdata", anonymity.Analyzer, "anonbad", "anongood")
}
