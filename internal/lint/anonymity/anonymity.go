// Package anonymity implements the anonlint/anonymity analyzer.
//
// The defining constraint of the fully-anonymous model (PAPER.md §2;
// Raynal–Taubenfeld) is that all processors run the *same* code: a
// machine has no identifier, no notion of "which processor am I", and
// can differ from its peers only in its input value and its private
// wiring permutation (which the System applies for it — machines never
// see it). Any machine implementation that receives, stores or branches
// on a processor index is running per-processor code and has silently
// left the model, invalidating every covering and impossibility argument
// built on it.
//
// The analyzer finds types implementing the machine step protocol (a
// method set containing Pending, Advance and Done — the machine.Machine
// shape) and flags, on those types and their constructors:
//
//   - constructor parameters of plain integer type whose name denotes a
//     processor identity (p, pid, proc, procID, rank, me, self, myID, id);
//   - struct fields of plain integer type with such names;
//   - struct fields holding the shared memory or system
//     (anonmem.Memory, machine.System) — machines may interact with
//     shared state only through the ops they offer;
//   - reads of ghost identity fields (machine.StepInfo.Proc/ReadFrom/
//     PrevWriter, anonmem.ReadResult.LastWriter,
//     anonmem.WriteResult.PrevWriter) inside the type's methods;
//   - calls from the type's methods into the canon package — the
//     symmetry-reduction layer is the quotient map over processor and
//     register identity, the one non-analysis package allowed to inspect
//     it, and algorithm code calling into it would observe its own orbit
//     (machines may *implement* canon's Symmetric/Relabelable
//     interfaces; they must never *call* the package).
//
// Identity detection is name-based by design: an int parameter named p is
// overwhelmingly a processor index in this codebase, and a false positive
// costs one rename or one justified //lint:ignore line, while a missed
// identity leak costs a silent exit from the model.
package anonymity

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"

	"anonshm/internal/lint/lintutil"
)

const name = "anonymity"

// Analyzer is the anonlint/anonymity analyzer.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "enforce the identical-program discipline on machine.Machine implementations\n\n" +
		"Anonymous processors run identical code: a machine must not receive, store or branch " +
		"on a processor index, hold a reference to the shared memory or system, read ghost " +
		"writer-identity fields, or call into the canon symmetry layer. Identity enters only " +
		"through the scheduler and the private wiring permutation, both outside the machine.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	rep := lintutil.NewReporter(pass, name)
	machines := lintutil.MachineTypes(pass.Pkg)
	if len(machines) == 0 {
		return nil, nil
	}
	for obj := range machines {
		checkStructFields(pass, rep, obj)
	}
	lintutil.WalkFiles(pass, func(f *ast.File) {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fd.Recv == nil {
				checkConstructor(pass, rep, fd)
			} else if recvIsMachine(pass, machines, fd) {
				checkMethodBody(pass, rep, fd)
			}
		}
	})
	return nil, nil
}

func isPlainInt(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func checkStructFields(pass *analysis.Pass, rep *lintutil.Reporter, tn *types.TypeName) {
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if lintutil.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		switch {
		case lintutil.IdentityName.MatchString(f.Name()) && isPlainInt(f.Type()):
			rep.Reportf(f.Pos(),
				"machine %s stores a processor-identity field %q; anonymous processors run identical code and must not know their index (PAPER.md §2)",
				tn.Name(), f.Name())
		case lintutil.NamedFrom(f.Type(), "anonmem", "Memory"):
			rep.Reportf(f.Pos(),
				"machine %s holds a reference to the shared memory; machines touch shared state only through the ops they offer (the System applies the wiring)",
				tn.Name())
		case lintutil.NamedFrom(f.Type(), "machine", "System"):
			rep.Reportf(f.Pos(),
				"machine %s holds a reference to the executing System; machines must not observe scheduling or peer state",
				tn.Name())
		}
	}
}

// checkConstructor flags processor-identity parameters on functions that
// return a machine-shaped type (concrete or interface).
func checkConstructor(pass *analysis.Pass, rep *lintutil.Reporter, fd *ast.FuncDecl) {
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	sig := obj.Type().(*types.Signature)
	returnsMachine := false
	for i := 0; i < sig.Results().Len(); i++ {
		t := sig.Results().At(i).Type()
		for {
			p, ok := t.(*types.Pointer)
			if !ok {
				break
			}
			t = p.Elem()
		}
		if lintutil.MachineShaped(t) {
			returnsMachine = true
			break
		}
	}
	if !returnsMachine {
		return
	}
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if lintutil.IdentityName.MatchString(p.Name()) && isPlainInt(p.Type()) {
			rep.Reportf(p.Pos(),
				"machine constructor %s takes a processor-identity parameter %q; identity may enter a machine only through the scheduler/permutation, never its code (PAPER.md §2)",
				fd.Name.Name, p.Name())
		}
	}
}

// ghost maps (owner type, field) to the package suffix that declares it.
var ghost = map[[2]string]string{
	{"StepInfo", "Proc"}:          "machine",
	{"StepInfo", "ReadFrom"}:      "machine",
	{"StepInfo", "PrevWriter"}:    "machine",
	{"ReadResult", "LastWriter"}:  "anonmem",
	{"WriteResult", "PrevWriter"}: "anonmem",
}

func recvIsMachine(pass *analysis.Pass, machines map[*types.TypeName]bool, fd *ast.FuncDecl) bool {
	if len(fd.Recv.List) != 1 {
		return false
	}
	t := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && machines[named.Obj()]
}

// checkMethodBody flags ghost writer-identity reads and calls into the
// canon symmetry layer inside the methods of a machine implementation.
func checkMethodBody(pass *analysis.Pass, rep *lintutil.Reporter, fd *ast.FuncDecl) {
	ast.Inspect(fd, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if callee := typeutil.Callee(pass.TypesInfo, call); callee != nil &&
				lintutil.FromPackage(callee, "canon") {
				rep.Reportf(call.Pos(),
					"machine step logic calls into the canon symmetry layer (%s); canonicalization is the observer's quotient map and must stay outside algorithm code (PAPER.md §2)",
					callee.Name())
			}
			return true
		}
		se, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		sel := pass.TypesInfo.Selections[se]
		if sel == nil || sel.Kind() != types.FieldVal {
			return true
		}
		recv := sel.Recv()
		for {
			p, ok := recv.(*types.Pointer)
			if !ok {
				break
			}
			recv = p.Elem()
		}
		named, ok := recv.(*types.Named)
		if !ok {
			return true
		}
		pkgBase, found := ghost[[2]string{named.Obj().Name(), se.Sel.Name}]
		if !found || !lintutil.FromPackage(named.Obj(), pkgBase) {
			return true
		}
		rep.Reportf(se.Sel.Pos(),
			"machine step logic reads ghost identity %s.%s; writer and processor identity are invisible to anonymous machines (PAPER.md §2)",
			named.Obj().Name(), se.Sel.Name)
		return true
	})
}
