// Package linttest is a self-contained golden-test harness for the
// anonlint analyzers, a small stand-in for
// golang.org/x/tools/go/analysis/analysistest (which the offline build
// does not vendor: it drags in go/packages and an external driver).
//
// Layout and expectations follow the analysistest convention: a test
// package lives in testdata/src/<importpath>, and every expected
// diagnostic is recorded on its line as a trailing comment
//
//	// want "regexp" ["regexp" ...]
//
// Run loads the package (resolving imports first against testdata/src,
// then against the standard library via the source importer), runs the
// analyzer, and fails the test on any unmatched diagnostic or
// expectation.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads each package path from testdata/src and applies the analyzer,
// comparing diagnostics against the // want expectations in the sources.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	l := newLoader(testdata)
	for _, path := range pkgpaths {
		pkg, err := l.Import(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		diags := runAnalyzer(t, l, a, pkg)
		checkExpectations(t, l, path, diags)
	}
}

// Finding is a diagnostic resolved to file/line, for tests that assert
// on diagnostics programmatically instead of via // want comments (e.g.
// the suppression-precision tests, where several analyzers inspect the
// same line).
type Finding struct {
	File    string // base name of the file
	Line    int
	Message string
}

// Findings loads one package path from testdata/src, applies the
// analyzer, and returns its diagnostics. No // want matching happens.
func Findings(t *testing.T, testdata string, a *analysis.Analyzer, pkgpath string) []Finding {
	t.Helper()
	l := newLoader(testdata)
	pkg, err := l.Import(pkgpath)
	if err != nil {
		t.Fatalf("loading %s: %v", pkgpath, err)
	}
	var out []Finding
	for _, d := range runAnalyzer(t, l, a, pkg) {
		pos := l.fset.Position(d.Pos)
		out = append(out, Finding{File: filepath.Base(pos.Filename), Line: pos.Line, Message: d.Message})
	}
	return out
}

// Diagnostics loads one package path from testdata/src, applies the
// analyzer, and returns the raw diagnostics together with the FileSet
// that positions them — for tests that assert on SuggestedFixes or
// apply them to source text.
func Diagnostics(t *testing.T, testdata string, a *analysis.Analyzer, pkgpath string) ([]analysis.Diagnostic, *token.FileSet) {
	t.Helper()
	l := newLoader(testdata)
	pkg, err := l.Import(pkgpath)
	if err != nil {
		t.Fatalf("loading %s: %v", pkgpath, err)
	}
	return runAnalyzer(t, l, a, pkg), l.fset
}

// loader loads testdata packages by import path, memoized, delegating
// unknown paths to the standard-library source importer.
type loader struct {
	fset   *token.FileSet
	srcdir string
	std    types.Importer
	pkgs   map[string]*loadedPkg
}

type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

func newLoader(testdata string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:   fset,
		srcdir: filepath.Join(testdata, "src"),
		std:    importer.ForCompiler(fset, "source", nil),
		pkgs:   make(map[string]*loadedPkg),
	}
}

// Import implements types.Importer over testdata/src with a stdlib
// fallback.
func (l *loader) Import(path string) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p.pkg, nil
	}
	dir := filepath.Join(l.srcdir, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		return l.std.Import(path)
	}
	lp, err := l.load(path, dir)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = lp
	return lp.pkg, nil
}

func (l *loader) load(path, dir string) (*loadedPkg, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:       make(map[ast.Node]*types.Scope),
		Instances:    make(map[*ast.Ident]types.Instance),
		FileVersions: make(map[*ast.File]string),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &loadedPkg{pkg: pkg, files: files, info: info}, nil
}

// runAnalyzer executes a (and, recursively, its requirements) over the
// loaded package and returns the diagnostics.
func runAnalyzer(t *testing.T, l *loader, a *analysis.Analyzer, pkg *types.Package) []analysis.Diagnostic {
	t.Helper()
	lp := l.pkgs[pkg.Path()]
	var diags []analysis.Diagnostic
	results := make(map[*analysis.Analyzer]any)
	var exec func(a *analysis.Analyzer) any
	exec = func(a *analysis.Analyzer) any {
		if r, ok := results[a]; ok {
			return r
		}
		deps := make(map[*analysis.Analyzer]any)
		for _, req := range a.Requires {
			deps[req] = exec(req)
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       l.fset,
			Files:      lp.files,
			Pkg:        lp.pkg,
			TypesInfo:  lp.info,
			TypesSizes: types.SizesFor("gc", "amd64"),
			ResultOf:   deps,
			ReadFile:   os.ReadFile,
			Report: func(d analysis.Diagnostic) {
				diags = append(diags, d)
			},
			ImportObjectFact:  func(types.Object, analysis.Fact) bool { return false },
			ImportPackageFact: func(*types.Package, analysis.Fact) bool { return false },
			ExportObjectFact:  func(types.Object, analysis.Fact) {},
			ExportPackageFact: func(analysis.Fact) {},
			AllObjectFacts:    func() []analysis.ObjectFact { return nil },
			AllPackageFacts:   func() []analysis.PackageFact { return nil },
		}
		r, err := a.Run(pass)
		if err != nil {
			t.Fatalf("analyzer %s on %s: %v", a.Name, pkg.Path(), err)
		}
		results[a] = r
		return r
	}
	exec(a)
	return diags
}

// expectation is one // want entry awaiting a matching diagnostic.
type expectation struct {
	rx      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)`)

// checkExpectations matches diagnostics against // want comments in the
// package's files and reports both unmatched sides.
func checkExpectations(t *testing.T, l *loader, path string, diags []analysis.Diagnostic) {
	t.Helper()
	lp := l.pkgs[path]
	wants := make(map[string][]*expectation) // "file:line" -> expectations
	for _, f := range lp.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := l.fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, raw := range splitQuoted(m[1]) {
					rx, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, raw, err)
					}
					wants[key] = append(wants[key], &expectation{rx: rx})
				}
			}
		}
	}
	for _, d := range diags {
		pos := l.fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.rx.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, w.rx)
			}
		}
	}
}

// splitQuoted extracts the sequence of Go-quoted strings from a want
// payload: `"a" "b"` -> [a b]. Backquoted strings are accepted too.
func splitQuoted(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
				end++
			}
			if end >= len(s) {
				return append(out, s) // unterminated; surface as-is
			}
			unq, err := strconv.Unquote(s[:end+1])
			if err != nil {
				unq = s[1:end]
			}
			out = append(out, unq)
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return append(out, s)
			}
			out = append(out, s[1:end+1])
			s = strings.TrimSpace(s[end+2:])
		default:
			return append(out, s)
		}
	}
	return out
}
