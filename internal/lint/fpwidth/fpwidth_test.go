package fpwidth_test

import (
	"testing"

	"anonshm/internal/lint/fpwidth"
	"anonshm/internal/lint/linttest"
)

// TestGolden checks both sides of the per-package heuristic: fpbad has
// no width guard, so its dynamic single-bit shifts are flagged (constant
// and %64/&63-bounded counts are not); fpgood guards m > 64 the way
// anonshm.New does and is entirely clean.
func TestGolden(t *testing.T) {
	linttest.Run(t, "testdata", fpwidth.Analyzer, "fpbad", "fpgood")
}
