// Package fpgood packs bits dynamically but guards its width the way
// anonshm.New does; with the guard present the dynamic shifts are
// trusted and nothing is flagged.
package fpgood

import "errors"

// Set is a bitset over at most 64 registers.
type Set struct {
	bits uint64
	m    int
}

// New rejects widths that would overflow the fingerprint word — this is
// the guard the analyzer looks for.
func New(m int) (*Set, error) {
	if m <= 0 || m > 64 {
		return nil, errors.New("fpgood: width exceeds the 64-bit fingerprint word")
	}
	return &Set{m: m}, nil
}

// Add's dynamic shift is fine: the package states its width limit.
func (s *Set) Add(r int) { s.bits |= 1 << uint(r) }
