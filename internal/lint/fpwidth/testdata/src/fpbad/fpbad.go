// Package fpbad packs bits dynamically with no width guard anywhere in
// the package: every unguarded single-bit shift is flagged.
package fpbad

// CrashMask is the real bug shape: 1 << p is silently 0 once p >= 64,
// dropping crash bits and aliasing distinct fingerprints.
func CrashMask(p int) uint64 {
	return 1 << uint(p) // want `dynamic single-bit shift in a package with no 64-width guard`
}

// Set flags wherever the shift appears, not just in returns.
func Set(mask uint64, r int) uint64 {
	return mask | 1<<r // want `dynamic single-bit shift in a package with no 64-width guard`
}

// TopBit uses a constant count — never flagged.
func TopBit() uint64 { return 1 << 63 }

// Wrapped bounds its count with % 64 — self-bounded, not flagged.
func Wrapped(e uint) uint64 { return 1 << (e % 64) }

// Masked bounds its count with & 63 — self-bounded, not flagged.
func Masked(e uint) uint64 { return 1 << (e & 63) }
