// Package fpwidth implements the anonlint/fpwidth analyzer.
//
// The explorer fingerprints register sets, crash masks and "unwritten"
// bookkeeping as one bit per register (or processor) packed into a single
// uint64 word — the documented M ≤ 64 constraint from anonshm.New. A
// dynamic single-bit shift 1 << e silently evaluates to 0 in Go once
// e ≥ 64, so an unguarded construction does not overflow loudly: it drops
// bits, aliases distinct states and breaks fingerprint soundness.
//
// The analyzer flags every 1 << e with a non-constant e in a package that
// contains no width guard. A package is considered guarded when any
// comparison against the constants 63 or 64 appears in it (the repo's
// idiom: "if m <= 0 || m > 64 { return err }"); a shift is considered
// self-bounded when its count contains "% c" with c ≤ 64 or "& c" with
// c ≤ 63. This is a per-package heuristic, deliberately coarse: a package
// that packs bits dynamically must state its width limit somewhere.
package fpwidth

import (
	"go/ast"
	"go/constant"
	"go/token"

	"golang.org/x/tools/go/analysis"

	"anonshm/internal/lint/lintutil"
)

const name = "fpwidth"

// Analyzer is the anonlint/fpwidth analyzer.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "flag unguarded dynamic single-bit shifts that can exceed the 64-register fingerprint word\n\n" +
		"Register and processor sets are fingerprinted as one bit per index in a single uint64; " +
		"1 << e is silently 0 for e >= 64, so every package packing bits dynamically must guard " +
		"its width (compare against 64, like anonshm.New) or bound the shift count.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	rep := lintutil.NewReporter(pass, name)
	guarded := false
	var shifts []*ast.BinaryExpr
	lintutil.WalkFiles(pass, func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch be.Op {
			case token.GTR, token.GEQ, token.LSS, token.LEQ:
				if isWidthConst(pass, be.X) || isWidthConst(pass, be.Y) {
					guarded = true
				}
			case token.SHL:
				if isOne(pass, be.X) && !isConst(pass, be.Y) && !bounded(pass, be.Y) {
					shifts = append(shifts, be)
				}
			}
			return true
		})
	})
	if guarded {
		return nil, nil
	}
	for _, be := range shifts {
		rep.Reportf(be.Pos(),
			"dynamic single-bit shift in a package with no 64-width guard; 1 << e is silently 0 for e >= 64 and drops fingerprint bits — guard the width (e.g. reject m > 64) or bound the count")
	}
	return nil, nil
}

// constIntValue returns the exact integer value of e if it is a typed or
// untyped integer constant.
func constIntValue(pass *analysis.Pass, e ast.Expr) (int64, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v := constant.ToInt(tv.Value)
	if v.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(v)
}

func isConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

func isOne(pass *analysis.Pass, e ast.Expr) bool {
	v, ok := constIntValue(pass, e)
	return ok && v == 1
}

func isWidthConst(pass *analysis.Pass, e ast.Expr) bool {
	v, ok := constIntValue(pass, e)
	return ok && (v == 63 || v == 64)
}

// bounded reports whether the shift-count expression contains a modulo or
// mask that provably keeps it below 64: "% c" with c <= 64 or "& c" with
// c <= 63.
func bounded(pass *analysis.Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.REM:
			if v, ok := constIntValue(pass, be.Y); ok && v > 0 && v <= 64 {
				found = true
			}
		case token.AND:
			if v, ok := constIntValue(pass, be.Y); ok && v >= 0 && v <= 63 {
				found = true
			}
			if v, ok := constIntValue(pass, be.X); ok && v >= 0 && v <= 63 {
				found = true
			}
		}
		return !found
	})
	return found
}
