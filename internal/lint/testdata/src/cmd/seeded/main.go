// Command seeded carries the one exitcode violation of the
// cross-analyzer fixture: a bare literal exit in a cmd/ package.
package main

import "os"

func main() {
	if len(os.Args) > 2 {
		os.Exit(2) // exitcode: bare literal
	}
}
