// Package core seeds exactly one violation per in-scope analyzer —
// anonymity, regaccess, determinism, fpwidth, taint and waitfree — in a
// single shared package (import path chosen to sit inside determinism's
// scope and outside regaccess's allowlist). The cross-analyzer test
// asserts each analyzer fires exactly once here: a violation crafted for
// one analyzer must not leak a second finding out of another.
package core

import (
	"anonmem"
	"machine"
)

// M is machine-shaped. The pid field is the anonymity violation (and
// only that: no store to it happens, so taint stays quiet).
type M struct {
	pid  int // anonymity: identity field on a machine
	slot int
	x, y int
	done bool
}

func (m *M) Pending() []int            { return nil }
func (m *M) Advance(choice int, v int) {}

// Done spins on mutable state: the waitfree violation.
func (m *M) Done() bool {
	for m.x != m.y { // waitfree: unbounded trip count on a step path
		m.x++
	}
	return m.done
}

// install + Build are the taint violation: ghost identity through a
// neutral-named helper parameter into a machine field, outside any
// machine method — invisible to anonymity, one interprocedural taint
// finding at the Build call site.
func install(m *M, v int) {
	m.slot = v
}

// Build routes StepInfo.Proc into M.slot via install.
func Build(info machine.StepInfo) *M {
	m := &M{}
	install(m, info.Proc)
	return m
}

// Inspect is the regaccess violation: omniscient register inspection
// outside the allowlist. Cells is not a taint identity source, so only
// regaccess reports.
func Inspect(mem *anonmem.Memory) int {
	return len(mem.Cells())
}

// Collect is the determinism violation: map iteration with no sort.
func Collect(outs map[int]string) string {
	acc := ""
	for _, v := range outs { // determinism: nondeterministic order
		acc += v
	}
	return acc
}

// Bit is the fpwidth violation: a dynamic single-bit shift in a package
// with no width guard (no comparison against 63 or 64 anywhere here).
func Bit(e uint) uint64 {
	return 1 << e
}
