// Package machine stubs the real internal/machine for the cross-analyzer
// fixture (suffix-matched import path).
package machine

// StepInfo describes one executed step; Proc is ghost identity.
type StepInfo struct {
	Proc   int
	Choice int
}
