// Package anonmem stubs the real internal/anonmem for the
// cross-analyzer fixture (suffix-matched import path).
package anonmem

// Word is one register cell.
type Word uint64

// Memory is the anonymous register file.
type Memory struct {
	cells []Word
}

// Cells is omniscient inspection: global register contents.
func (m *Memory) Cells() []Word { return m.cells }
