package exitcode_test

import (
	"os"
	"strings"
	"testing"

	"anonshm/internal/lint/exitcode"
	"anonshm/internal/lint/linttest"
)

// TestGolden covers flagged literals (in and outside the 0–5
// convention), log.Fatal*, accepted expression arguments, a justified
// suppression, and silence on non-cmd packages.
func TestGolden(t *testing.T) {
	linttest.Run(t, "testdata", exitcode.Analyzer, "cmd/exitbad", "cmd/exitgood", "notcmd")
}

// TestSuggestedFixes applies the analyzer's text edits to the fixture
// source and checks every in-convention literal is rewritten to its
// exitcode constant — the same byte-offset application anonlint -fix
// performs.
func TestSuggestedFixes(t *testing.T) {
	diags, fset := linttest.Diagnostics(t, "testdata", exitcode.Analyzer, "cmd/exitbad")

	type edit struct {
		start, end int
		newText    string
	}
	var edits []edit
	var file string
	for _, d := range diags {
		for _, fix := range d.SuggestedFixes {
			for _, te := range fix.TextEdits {
				p, e := fset.Position(te.Pos), fset.Position(te.End)
				if file == "" {
					file = p.Filename
				} else if file != p.Filename {
					t.Fatalf("edits span files %s and %s", file, p.Filename)
				}
				edits = append(edits, edit{p.Offset, e.Offset, string(te.NewText)})
			}
		}
	}
	// 4 literal replacements, plus one import insertion carried by the
	// first fix (the fixture doesn't import exitcode).
	if len(edits) != 5 {
		t.Fatalf("want 5 suggested edits (literals 0,1,2,3 + import), got %d", len(edits))
	}

	src, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	// Apply back-to-front so earlier offsets stay valid.
	for i := range edits {
		for j := i + 1; j < len(edits); j++ {
			if edits[j].start > edits[i].start {
				edits[i], edits[j] = edits[j], edits[i]
			}
		}
	}
	out := string(src)
	for _, e := range edits {
		out = out[:e.start] + e.newText + out[e.end:]
	}
	for _, want := range []string{
		"os.Exit(exitcode.Usage)",
		"os.Exit(exitcode.Error)",
		"os.Exit(exitcode.Violation)",
		"os.Exit(exitcode.OK)",
		"\"anonshm/internal/exitcode\"\n)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("fixed source lacks %q", want)
		}
	}
	if strings.Contains(out, "os.Exit(2)") || strings.Contains(out, "os.Exit(0)") {
		t.Errorf("fixed source still contains a bare convention literal:\n%s", out)
	}
	// The out-of-convention literal has no safe rewrite and must survive.
	if !strings.Contains(out, "os.Exit(7)") {
		t.Errorf("fixed source lost the out-of-convention literal 7")
	}
}
