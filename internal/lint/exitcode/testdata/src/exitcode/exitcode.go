// Package exitcode is a stub of anonshm/internal/exitcode for the
// analyzer's fixtures.
package exitcode

const (
	OK         = 0
	Error      = 1
	Usage      = 2
	Violation  = 3
	Regression = 4
	Stalled    = 5
)

// Code maps an error to an exit code.
func Code(err error) int {
	if err == nil {
		return OK
	}
	return Error
}
