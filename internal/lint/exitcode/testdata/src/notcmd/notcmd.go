// Package notcmd is library code: the exitcode analyzer only patrols
// cmd/ packages, so this bare literal must stay silent.
package notcmd

import "os"

// Die exits with a bare literal — questionable, but not this analyzer's
// beat outside cmd/.
func Die() {
	os.Exit(2)
}
