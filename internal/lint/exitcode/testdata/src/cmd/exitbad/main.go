// Command exitbad seeds every exit-path shape the exitcode analyzer
// flags: bare literals in and outside the convention, and log.Fatal*.
package main

import (
	"flag"
	"log"
	"os"
)

func main() {
	if err := flag.CommandLine.Parse(os.Args[1:]); err != nil {
		os.Exit(2) // want `os\.Exit with bare literal 2; use exitcode\.Usage`
	}
	if len(flag.Args()) == 0 {
		os.Exit(1) // want `os\.Exit with bare literal 1; use exitcode\.Error`
	}
	if flag.Arg(0) == "violated" {
		os.Exit(3) // want `os\.Exit with bare literal 3; use exitcode\.Violation`
	}
	if flag.Arg(0) == "weird" {
		os.Exit(7) // want `os\.Exit with literal status 7 outside the exitcode convention`
	}
	if flag.Arg(0) == "fatal" {
		log.Fatalf("boom: %s", flag.Arg(0)) // want `log\.Fatalf exits with status 1 behind the exitcode convention's back`
	}
	os.Exit(0) // want `os\.Exit with bare literal 0; use exitcode\.OK`
}
