// Command exitgood exits only through the convention: constants,
// exitcode.Code, forwarded statuses, and one justified suppression.
package main

import (
	"errors"
	"os"

	"exitcode"
)

func run() error { return errors.New("nope") }

func forwarded() int { return 3 }

func main() {
	if len(os.Args) > 3 {
		os.Exit(exitcode.Usage)
	}
	if len(os.Args) == 3 {
		// Forwarding a status computed elsewhere is an expression, not a
		// literal: accepted.
		os.Exit(forwarded())
	}
	if len(os.Args) == 2 {
		//lint:ignore anonlint/exitcode fixture: exec protocol of the wrapped tool mandates literal 64
		os.Exit(64)
	}
	os.Exit(exitcode.Code(run()))
}
