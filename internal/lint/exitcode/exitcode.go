// Package exitcode implements the anonlint/exitcode analyzer.
//
// The anonshm binaries share a process-exit convention (package
// internal/exitcode): 0 OK, 1 Error, 2 Usage, 3 Violation, 4
// Regression, 5 Stalled. Scripts and CI branch on these codes — "the
// check found a counterexample" (3) is actionable in a completely
// different way than "the invocation was wrong" (2) — so a bare
// os.Exit(2) in a main package is a latent divergence: the number is
// right today and silently wrong the day the convention shifts.
//
// The analyzer checks main packages under cmd/ (matched by import path,
// so it never fires on library code) and flags:
//
//   - os.Exit with a literal integer argument — with a suggested fix
//     replacing the literal by the matching exitcode constant
//     (os.Exit(2) → os.Exit(exitcode.Usage)), applied by anonlint -fix;
//     the first fix in a file that doesn't yet import exitcode also
//     inserts the import, so the fixed file compiles;
//   - log.Fatal / log.Fatalf / log.Fatalln — these always exit with
//     status 1, bypassing the convention entirely; print to stderr and
//     os.Exit(exitcode.Error) instead.
//
// Arguments that are already expressions — exitcode constants,
// exitcode.Code(err), a forwarded child status — are accepted; the
// analyzer only distrusts literals.
package exitcode

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"

	"anonshm/internal/lint/lintutil"
)

const name = "exitcode"

// Analyzer is the anonlint/exitcode analyzer.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "route cmd/* exit statuses through the internal/exitcode constants\n\n" +
		"The binaries' exit codes are a script-visible API (0 OK … 5 Stalled). os.Exit with a " +
		"bare literal, or log.Fatal* (always status 1), bypasses the convention; use the " +
		"exitcode constants or exitcode.Code(err).",
	Run: run,
}

// constants maps literal exit statuses to the internal/exitcode constant
// names, in code order.
var constants = [...]string{"OK", "Error", "Usage", "Violation", "Regression", "Stalled"}

func run(pass *analysis.Pass) (any, error) {
	if !inCmd(pass.Pkg.Path()) {
		return nil, nil
	}
	rep := lintutil.NewReporter(pass, name)
	lintutil.WalkFiles(pass, func(f *ast.File) {
		// The first fix in a file that doesn't import exitcode also
		// carries the import insertion, so anonlint -fix leaves the
		// file compiling; later fixes in the same file omit it (all
		// fixes are applied together, and duplicate insertions at one
		// offset would collide).
		imp := importEdit(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
			if !ok {
				return true
			}
			switch {
			case fn.FullName() == "os.Exit" && len(call.Args) == 1:
				if checkExitArg(pass, rep, call.Args[0], imp) {
					imp = nil
				}
			case strings.HasPrefix(fn.FullName(), "log.Fatal"):
				rep.Reportf(call.Pos(),
					"%s exits with status 1 behind the exitcode convention's back; print to stderr and os.Exit(exitcode.Error) so scripts can trust the code",
					fn.FullName())
			}
			return true
		})
	})
	return nil, nil
}

// inCmd reports whether path names a package under a cmd/ tree.
func inCmd(path string) bool {
	return strings.HasPrefix(path, "cmd/") || strings.Contains(path, "/cmd/")
}

// checkExitArg flags a literal status argument, attaching a fix that
// substitutes the matching exitcode constant (plus imp, the pending
// import insertion, if non-nil). It reports whether an unsuppressed
// fix-bearing diagnostic was emitted, i.e. whether imp was consumed.
func checkExitArg(pass *analysis.Pass, rep *lintutil.Reporter, arg ast.Expr, imp *analysis.TextEdit) bool {
	lit, ok := ast.Unparen(arg).(*ast.BasicLit)
	if !ok {
		return false
	}
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return false
	}
	code, ok := constant.Int64Val(tv.Value)
	if !ok || code < 0 || int(code) >= len(constants) {
		rep.Reportf(arg.Pos(),
			"os.Exit with literal status %s outside the exitcode convention (0 OK … 5 Stalled); use an internal/exitcode constant", lit.Value)
		return false
	}
	if rep.Suppressed(arg.Pos()) {
		return false
	}
	edits := []analysis.TextEdit{{
		Pos:     lit.Pos(),
		End:     lit.End(),
		NewText: []byte("exitcode." + constants[code]),
	}}
	if imp != nil {
		edits = append(edits, *imp)
	}
	rep.Report(analysis.Diagnostic{
		Pos: arg.Pos(),
		Message: fmt.Sprintf(
			"os.Exit with bare literal %d; use exitcode.%s so the script-visible exit convention has one definition (internal/exitcode)",
			code, constants[code]),
		SuggestedFixes: []analysis.SuggestedFix{{
			Message:   fmt.Sprintf("replace %d with exitcode.%s", code, constants[code]),
			TextEdits: edits,
		}},
	})
	return true
}

// importEdit returns a TextEdit inserting the exitcode import into f,
// or nil if f already imports a package named (or aliased) exitcode.
// The import path is taken from whatever exitcode package the rest of
// the package under analysis imports, defaulting to the real one.
func importEdit(pass *analysis.Pass, f *ast.File) *analysis.TextEdit {
	for _, spec := range f.Imports {
		p, _ := strconv.Unquote(spec.Path.Value)
		local := p
		if i := strings.LastIndexByte(p, '/'); i >= 0 {
			local = p[i+1:]
		}
		if spec.Name != nil {
			local = spec.Name.Name
		}
		if local == "exitcode" {
			return nil
		}
	}
	path := "anonshm/internal/exitcode"
	for _, dep := range pass.Pkg.Imports() {
		if dep.Name() == "exitcode" {
			path = dep.Path()
			break
		}
	}
	for _, d := range f.Decls {
		g, ok := d.(*ast.GenDecl)
		if !ok || g.Tok != token.IMPORT {
			continue
		}
		if g.Rparen.IsValid() {
			return &analysis.TextEdit{Pos: g.Rparen, End: g.Rparen,
				NewText: []byte("\t" + strconv.Quote(path) + "\n")}
		}
		return &analysis.TextEdit{Pos: g.End(), End: g.End(),
			NewText: []byte("\nimport " + strconv.Quote(path))}
	}
	return &analysis.TextEdit{Pos: f.Name.End(), End: f.Name.End(),
		NewText: []byte("\n\nimport " + strconv.Quote(path))}
}
