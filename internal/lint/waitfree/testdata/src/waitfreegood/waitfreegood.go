// Package waitfreegood holds loops the waitfree analyzer must accept:
// statically bounded trips, loops off the step path, and justified or
// suppressed spins.
package waitfreegood

// G is machine-shaped.
type G struct {
	regs []int
	x, y int
	n    int
	done bool
}

func (g *G) Pending() []int {
	out := make([]int, 0, len(g.regs))
	for i := 0; i < len(g.regs); i++ {
		out = append(out, g.regs[i])
	}
	return out
}

func (g *G) Advance(choice int, v int) {
	for _, r := range g.regs {
		_ = r
	}
	for i := range g.n {
		_ = i
	}
	k := g.n
	for i := 0; i < k; i++ {
		g.x++
	}
	for i := 0; i < 2*k+1; i++ {
		g.y++
	}
	g.collect()
}

func (g *G) Done() bool {
	//lint:bound double collect: at most n writers, each moves x toward y once (covering argument, PAPER.md §3)
	for g.x != g.y {
		g.x++
	}
	//lint:ignore anonlint/waitfree fixture: plain suppression also silences waitfree
	for !g.done {
	}
	return g.done
}

func (g *G) collect() {
	for i := 0; i < len(g.regs) && g.x < g.y; i++ {
		_ = g.regs[i]
	}
}

// offPath is never called from a step method: its spin loop is the
// scheduler's business, not the machine's, and must stay silent.
func (g *G) offPath() {
	for {
	}
}

// Helper is a plain function in a machine package but unreachable from
// any step method.
func Helper(ch chan int) int {
	s := 0
	for v := range ch {
		s += v
	}
	return s
}
