// Package waitfreebad seeds every unbounded-loop shape the waitfree
// analyzer models: bare for, spin-on-state, spin hidden behind an
// in-package helper, channel ranges and iterator ranges, all on the
// machine step path.
package waitfreebad

// W is machine-shaped, so its Pending/Advance/Done methods root the
// reachability walk.
type W struct {
	regs  []int
	x, y  int
	ready bool
	ch    chan int
}

func (w *W) Pending() []int { return w.regs }

func (w *W) Advance(choice int, v int) {
	for { // want `unbounded loop on the machine step path \(no loop condition in Advance, reachable from W\.Advance\)`
		if w.probe() == 0 {
			break
		}
	}
	w.scan()
}

func (w *W) Done() bool {
	for !w.ready { // want `unbounded loop on the machine step path \(loop condition without a static bound in Done, reachable from W\.Done\)`
	}
	for w.probe() == 0 { // want `unbounded loop on the machine step path \(loop condition without a static bound in Done, reachable from W\.Done\)`
	}
	return w.ready
}

func (w *W) probe() int { return w.x - w.y }

// scan hides its spin loop one call away from the step method: only the
// reachability walk sees it.
func (w *W) scan() {
	for w.x != w.y { // want `unbounded loop on the machine step path \(loop condition without a static bound in scan, reachable from W\.Advance\)`
		w.x++
	}
	for v := range w.ch { // want `unbounded loop on the machine step path \(range over a channel in scan, reachable from W\.Advance\)`
		_ = v
	}
	for v := range w.iter { // want `unbounded loop on the machine step path \(range over an iterator function in scan, reachable from W\.Advance\)`
		_ = v
	}
}

func (w *W) iter(yield func(int) bool) {
	for i := 0; i < len(w.regs); i++ {
		if !yield(w.regs[i]) {
			return
		}
	}
}
