// Package waitfree implements the anonlint/waitfree analyzer.
//
// Wait-freedom (PAPER.md §2) demands that every processor completes each
// of its own steps in a bounded number of its own operations, regardless
// of how the adversary schedules everyone else. In this codebase a step
// is a call into the machine protocol — Pending, Advance or Done on a
// machine-shaped type — plus whatever in-package helpers those methods
// reach. A loop on that path whose trip count cannot be bounded
// statically is how wait-freedom silently dies: one retry loop that
// spins until a peer cooperates turns a wait-free construction into a
// lock-free (or blocking) one and voids the covering argument built on
// it.
//
// The analyzer computes the set of functions reachable from machine step
// methods through in-package calls and requires every for/range loop in
// that set to have a statically bounded trip count:
//
//   - range over a slice, array, map, string or integer is bounded by
//     the size of the ranged value;
//   - a for-loop whose condition compares against a constant, a len()
//     or cap() call, or a plain identifier (a bound fixed before the
//     loop) is accepted;
//   - everything else — for {}, channel ranges, iterator (range-over-
//     func) loops, conditions that re-read mutable state — is flagged.
//
// A loop the author can argue terminates in a bounded number of steps
// anyway (e.g. bounded by a structural invariant the checker cannot
// see) carries a "//lint:bound reason" directive on the line of the
// loop or the line above; the reason is mandatory. Ordinary
// //lint:ignore anonlint/waitfree suppressions also work, but
// //lint:bound is the idiomatic form because it documents the bound
// rather than silencing the finding.
package waitfree

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"

	"anonshm/internal/lint/lintutil"
)

const name = "waitfree"

// Analyzer is the anonlint/waitfree analyzer.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "require statically bounded loops on machine step paths\n\n" +
		"Wait-free machines complete every Pending/Advance/Done call in a bounded number of " +
		"their own operations. Loops reachable from those methods must have a statically " +
		"evident trip bound (constant, len/cap, or a pre-loop variable) or carry a " +
		"//lint:bound justification.",
	Run: run,
}

// stepMethods are the machine protocol entry points: a loop is on the
// wait-free path when one of these can reach it.
var stepMethods = map[string]bool{"Pending": true, "Advance": true, "Done": true}

func run(pass *analysis.Pass) (any, error) {
	machines := lintutil.MachineTypes(pass.Pkg)
	if len(machines) == 0 {
		return nil, nil
	}
	rep := lintutil.NewReporter(pass, name)

	// Map every in-package function object to its declaration so the
	// reachability walk can cross call edges.
	decls := map[*types.Func]*ast.FuncDecl{}
	lintutil.WalkFiles(pass, func(f *ast.File) {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	})

	// Roots: Pending/Advance/Done on machine-shaped receivers.
	type root struct {
		fn    *types.Func
		entry string
	}
	var work []root
	for fn, fd := range decls {
		if fd.Recv == nil || !stepMethods[fn.Name()] {
			continue
		}
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil && lintutil.MachineShaped(recv.Type()) {
			work = append(work, root{fn, recvName(recv.Type()) + "." + fn.Name()})
		}
	}

	// Breadth-first reachability over in-package calls, remembering the
	// entry method that first reached each function for the diagnostic.
	via := map[*types.Func]string{}
	for len(work) > 0 {
		r := work[0]
		work = work[1:]
		if _, seen := via[r.fn]; seen {
			continue
		}
		via[r.fn] = r.entry
		ast.Inspect(decls[r.fn].Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func); ok {
				if _, in := decls[callee]; in {
					work = append(work, root{callee, r.entry})
				}
			}
			return true
		})
	}

	for fn, entry := range via {
		checkLoops(pass, rep, decls[fn], entry)
	}
	return nil, nil
}

func recvName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

func checkLoops(pass *analysis.Pass, rep *lintutil.Reporter, fd *ast.FuncDecl, entry string) {
	if lintutil.IsTestFile(pass.Fset, fd.Pos()) {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch loop := n.(type) {
		case *ast.RangeStmt:
			if reason := rangeUnbounded(pass, loop); reason != "" {
				report(pass, rep, loop.Pos(), fd, entry, reason)
			}
		case *ast.ForStmt:
			if reason := forUnbounded(pass, loop); reason != "" {
				report(pass, rep, loop.Pos(), fd, entry, reason)
			}
		}
		return true
	})
}

func report(pass *analysis.Pass, rep *lintutil.Reporter, pos token.Pos, fd *ast.FuncDecl, entry, reason string) {
	if lintutil.BoundJustified(pass, pos) {
		return
	}
	rep.Reportf(pos,
		"unbounded loop on the machine step path (%s in %s, reachable from %s); wait-freedom requires a statically bounded trip count — bound it by a constant, len/cap or a pre-loop variable, or justify with //lint:bound (PAPER.md §2)",
		reason, fd.Name.Name, entry)
}

// rangeUnbounded classifies a range statement; bounded ranges return "".
func rangeUnbounded(pass *analysis.Pass, loop *ast.RangeStmt) string {
	t := pass.TypesInfo.TypeOf(loop.X)
	if t == nil {
		return ""
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array, *types.Map, *types.Pointer:
		return ""
	case *types.Basic:
		if u.Info()&(types.IsInteger|types.IsString) != 0 {
			return ""
		}
	case *types.Chan:
		return "range over a channel"
	case *types.Signature:
		return "range over an iterator function"
	}
	return "range over an unbounded value"
}

// forUnbounded classifies a for statement; bounded loops return "".
func forUnbounded(pass *analysis.Pass, loop *ast.ForStmt) string {
	if loop.Cond == nil {
		return "no loop condition"
	}
	if boundedCond(pass, loop.Cond) {
		return ""
	}
	return "loop condition without a static bound"
}

// boundedCond accepts comparisons whose limit side is statically fixed
// before the loop runs: a constant, len()/cap(), or a plain variable
// (mutating the bound inside the body is out of model for this checker;
// the codebase never does and the race detector would catch shared
// mutation anyway).
func boundedCond(pass *analysis.Pass, cond ast.Expr) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND, token.LOR:
			// A conjunction is bounded when either side is; a
			// disjunction only when both are.
			if e.Op == token.LAND {
				return boundedCond(pass, e.X) || boundedCond(pass, e.Y)
			}
			return boundedCond(pass, e.X) && boundedCond(pass, e.Y)
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.NEQ:
			// Bounded shapes: an induction identifier against any fixed
			// expression ("i < len(regs)", "i < 2*k+1", "i < s.n"), or a
			// constant/len limit against a non-call ("x != 0"). Selector-
			// against-selector ("w.x != w.y") and call-against-constant
			// ("w.probe() == 0") re-read mutable state: spin loops.
			if isIdent(e.X) && fixedLimit(pass, e.Y) || isIdent(e.Y) && fixedLimit(pass, e.X) {
				return true
			}
			return (constOrLen(pass, e.X) && !isCall(e.Y)) ||
				(constOrLen(pass, e.Y) && !isCall(e.X))
		}
	}
	return false
}

func isIdent(e ast.Expr) bool {
	_, ok := ast.Unparen(e).(*ast.Ident)
	return ok
}

func isCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
		return false
	}
	return true
}

// constOrLen reports whether e is a constant or a len/cap call — the
// limits that are fixed regardless of what the other side is.
func constOrLen(pass *analysis.Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
		return true
	}
	if call, ok := e.(*ast.CallExpr); ok {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b != nil {
				return true
			}
		}
	}
	return false
}

// fixedLimit reports whether e is a limit expression built from parts
// fixed before loop entry: constants, len/cap, identifiers, selectors,
// and arithmetic over them.
func fixedLimit(pass *analysis.Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	if constOrLen(pass, e) {
		return true
	}
	switch e := e.(type) {
	case *ast.Ident, *ast.SelectorExpr:
		return true
	case *ast.BinaryExpr:
		return fixedLimit(pass, e.X) && fixedLimit(pass, e.Y)
	case *ast.UnaryExpr:
		return fixedLimit(pass, e.X)
	}
	return false
}
