package waitfree_test

import (
	"testing"

	"anonshm/internal/lint/linttest"
	"anonshm/internal/lint/waitfree"
)

// TestGolden seeds each unbounded-loop shape (bare for, spin-on-state,
// helper-hidden spin, channel and iterator ranges) and each accepted
// bound (len, range, pre-loop variable, //lint:bound, //lint:ignore,
// off-path loops).
func TestGolden(t *testing.T) {
	linttest.Run(t, "testdata", waitfree.Analyzer, "waitfreebad", "waitfreegood")
}
