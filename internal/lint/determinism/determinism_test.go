package determinism_test

import (
	"slices"
	"strings"
	"testing"

	"anonshm/internal/lint/determinism"
	"anonshm/internal/lint/linttest"
)

// TestGolden checks the analyzer against the in-scope fixture package:
// map iteration, time.Now and global math/rand are flagged; the
// sort-after-collect idiom, seeded generators and slice iteration are
// not; a //lint:ignore directive silences its line.
func TestGolden(t *testing.T) {
	linttest.Run(t, "testdata", determinism.Analyzer, "internal/explore")
}

// TestOutOfScope proves the -packages scope: the same constructions in a
// package off the list produce no findings.
func TestOutOfScope(t *testing.T) {
	if fs := linttest.Findings(t, "testdata", determinism.Analyzer, "otherpkg"); len(fs) != 0 {
		t.Fatalf("out-of-scope package produced findings: %+v", fs)
	}
}

// TestStoreInScope pins internal/store in the default scope: spill
// order, run merging and checkpoint bytes all feed resumable state
// counts, so the out-of-core layer is determinism-critical too.
func TestStoreInScope(t *testing.T) {
	scope := strings.Split(determinism.DefaultPackages, ",")
	for _, p := range []string{"internal/explore", "internal/machine", "internal/core", "internal/store"} {
		if !slices.Contains(scope, p) {
			t.Errorf("package %s not in DefaultPackages %q", p, determinism.DefaultPackages)
		}
	}
}
