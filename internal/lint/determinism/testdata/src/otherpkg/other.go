// Package otherpkg is outside the determinism analyzer's -packages
// scope: nothing here is flagged even though it would be in scope.
package otherpkg

import "time"

func MapIteration(m map[int]int) int {
	n := 0
	for k := range m {
		n += k
	}
	return n
}

func WallClock() time.Time { return time.Now() }
