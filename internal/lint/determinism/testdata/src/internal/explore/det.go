// Package explore is a determinism-analyzer fixture standing in for the
// real internal/explore (the import path matches the analyzer's default
// -packages scope).
package explore

import (
	"maps"
	"math/rand"
	"slices"
	"sort"
	"time"
)

// MapIteration feeds an unordered map walk into an aggregate — flagged.
func MapIteration(outs map[int]string) string {
	acc := ""
	for _, v := range outs { // want `iteration over map map\[int\]string has nondeterministic order`
		acc += v
	}
	return acc
}

// NestedMapIteration is flagged wherever the loop sits.
func NestedMapIteration(outs map[int]string) int {
	n := 0
	if len(outs) > 0 {
		for k := range outs { // want `iteration over map`
			n += k
		}
	}
	return n
}

// SortedIteration is the recognized deterministic idiom: collect, then
// immediately sort. Not flagged.
func SortedIteration(outs map[string]int) []string {
	keys := make([]string, 0, len(outs))
	for k := range outs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// IterKeys hides the same unordered walk behind the Go 1.23 iterator —
// flagged like a bare map range.
func IterKeys(outs map[int]string) int {
	n := 0
	for k := range maps.Keys(outs) { // want `range over maps\.Keys visits the map in nondeterministic order`
		n += k
	}
	return n
}

// IterValues likewise for the values iterator.
func IterValues(outs map[int]string) string {
	acc := ""
	for v := range maps.Values(outs) { // want `range over maps\.Values visits the map in nondeterministic order`
		acc += v
	}
	return acc
}

// SortedIterKeys is the deterministic iterator idiom: materialize and
// sort in one expression. The range is over a sorted slice — not flagged.
func SortedIterKeys(outs map[int]string) int {
	n := 0
	for _, k := range slices.Sorted(maps.Keys(outs)) {
		n += k
	}
	return n
}

// SliceIteration is ordered — never flagged.
func SliceIteration(outs []string) string {
	acc := ""
	for _, v := range outs {
		acc += v
	}
	return acc
}

// WallClock reads the wall clock on an exploration path — flagged.
func WallClock() int64 {
	return time.Now().UnixNano() // want `time\.Now on an exploration path`
}

// Elapsed only manipulates an existing time value — not flagged.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start)
}

// GlobalRand draws from the shared unseeded source — flagged.
func GlobalRand(n int) int {
	return rand.Intn(n) // want `rand\.Intn draws from the global random source`
}

// GlobalShuffle is flagged too.
func GlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand\.Shuffle draws from the global random source`
}

// SeededRand builds and uses an explicitly seeded generator — the
// constructors and the method calls are both fine.
func SeededRand(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}

// Suppressed demonstrates the directive: the finding on the next line is
// silenced with a justification.
func Suppressed(outs map[int]string) int {
	n := 0
	//lint:ignore anonlint/determinism fixture: order-insensitive count
	for range outs {
		n++
	}
	return n
}
