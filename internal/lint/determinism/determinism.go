// Package determinism implements the anonlint/determinism analyzer.
//
// The explorer's verification story depends on bit-for-bit replayable
// runs: counterexample traces must replay, state counts must agree across
// engines (EXPERIMENTS.md E14), and report files must diff cleanly. Any
// order or value that varies between runs of the same binary breaks that.
// Within the determinism-critical packages (-packages, default
// internal/explore, internal/machine, internal/core, internal/store)
// the analyzer flags the three classic sources of silent run-to-run
// variation:
//
//   - iteration over a map (unordered by language definition),
//     including the Go 1.23 iterator forms — range over maps.Keys(m) or
//     maps.Values(m) is the same unordered walk behind an iter.Seq;
//   - time.Now on an exploration path;
//   - the global math/rand source (rand.Intn and friends); a seeded
//     *rand.Rand obtained from rand.New(rand.NewSource(seed)) is fine.
package determinism

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"

	"anonshm/internal/lint/lintutil"
)

// DefaultPackages is the default -packages scope: the packages whose
// behaviour feeds state enumeration, fingerprints and trace output.
const DefaultPackages = "internal/explore,internal/machine,internal/core,internal/store"

var packages string

const name = "determinism"

// Analyzer is the anonlint/determinism analyzer.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "flag map iteration, time.Now and global math/rand in determinism-critical packages\n\n" +
		"Exploration must be replayable: identical binaries and seeds must produce identical " +
		"state counts, traces and fingerprints. Map iteration order, wall-clock reads and the " +
		"shared math/rand source all vary between runs and silently break that.",
	Run: run,
}

func init() {
	Analyzer.Flags.StringVar(&packages, "packages", DefaultPackages,
		"comma-separated package path suffixes to check")
}

// randConstructors are the math/rand functions that build explicitly
// seeded generators rather than drawing from the global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !lintutil.MatchPackage(pass.Pkg.Path(), packages) {
		return nil, nil
	}
	rep := lintutil.NewReporter(pass, name)
	lintutil.WalkFiles(pass, func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BlockStmt:
				checkStmts(pass, rep, n.List)
			case *ast.CaseClause:
				checkStmts(pass, rep, n.Body)
			case *ast.CommClause:
				checkStmts(pass, rep, n.Body)
			case *ast.CallExpr:
				checkCall(pass, rep, n)
			}
			return true
		})
	})
	return nil, nil
}

// checkStmts flags map-range loops in a statement list. The one
// recognized deterministic idiom — collect the keys, then immediately
// sort them (a sort.* or slices.* call as the next statement) — is not
// flagged.
func checkStmts(pass *analysis.Pass, rep *lintutil.Reporter, stmts []ast.Stmt) {
	for i, s := range stmts {
		rs, ok := s.(*ast.RangeStmt)
		if !ok {
			continue
		}
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			continue
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			if fn := mapsIterCallee(pass, rs.X); fn != "" {
				rep.Reportf(rs.Pos(),
					"range over maps.%s visits the map in nondeterministic order, exactly like a bare map range; collect with slices.Sorted(maps.%s(m)) before anything that feeds state enumeration, traces or fingerprints",
					fn, fn)
			}
			continue
		}
		if i+1 < len(stmts) && isSortCall(pass, stmts[i+1]) {
			continue
		}
		rep.Reportf(rs.Pos(),
			"iteration over map %s has nondeterministic order; sort the keys (or use a slice) before anything that feeds state enumeration, traces or fingerprints",
			types.TypeString(t, types.RelativeTo(pass.Pkg)))
	}
}

// mapsIterCallee reports whether e is a call to the standard maps
// package's iterator constructors Keys or Values (the Go 1.23 forms that
// hide a map walk behind an iter.Seq), returning the function name.
func mapsIterCallee(pass *analysis.Pass, e ast.Expr) string {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return ""
	}
	f, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
	if !ok || f.Pkg() == nil || f.Pkg().Path() != "maps" {
		return ""
	}
	if f.Name() == "Keys" || f.Name() == "Values" {
		return f.Name()
	}
	return ""
}

// isSortCall reports whether s is a statement calling into the sort or
// slices packages.
func isSortCall(pass *analysis.Pass, s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	f, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
	if !ok || f.Pkg() == nil {
		return false
	}
	return f.Pkg().Path() == "sort" || f.Pkg().Path() == "slices"
}

func checkCall(pass *analysis.Pass, rep *lintutil.Reporter, call *ast.CallExpr) {
	fn := typeutil.Callee(pass.TypesInfo, call)
	f, ok := fn.(*types.Func)
	if !ok || f.Pkg() == nil {
		return
	}
	if sig, ok := f.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. (*rand.Rand).Intn on a seeded source) are fine
	}
	switch f.Pkg().Path() {
	case "time":
		if f.Name() == "Now" {
			rep.Reportf(call.Pos(),
				"time.Now on an exploration path; wall-clock values vary between runs — keep timing out of anything fingerprinted or traced")
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[f.Name()] {
			rep.Reportf(call.Pos(),
				"%s.%s draws from the global random source; use a seeded *rand.Rand (rand.New(rand.NewSource(seed))) so runs replay",
				f.Pkg().Name(), f.Name())
		}
	}
}
