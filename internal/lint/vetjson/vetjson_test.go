package vetjson

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// stream mimics go vet -json output: package comment lines interleaved
// with per-package JSON objects, one carrying a suggested fix.
const stream = `# anonshm/cmd/anonexplore
# [anonshm/cmd/anonexplore]
{
	"anonshm/cmd/anonexplore": {
		"exitcode": [
			{
				"posn": "/repo/cmd/anonexplore/main.go:142:11",
				"message": "os.Exit with bare literal 2; use exitcode.Usage",
				"suggested_fixes": [
					{
						"message": "replace 2 with exitcode.Usage",
						"edits": [
							{
								"filename": "/repo/cmd/anonexplore/main.go",
								"start": 3100,
								"end": 3101,
								"new": "exitcode.Usage"
							}
						]
					}
				]
			}
		]
	}
}
# anonshm/internal/explore
{
	"anonshm/internal/explore": {
		"determinism": [
			{
				"posn": "/repo/internal/explore/walk.go:33:2",
				"message": "iteration over map map[int]string has nondeterministic order"
			}
		],
		"taint": []
	}
}
`

func TestParse(t *testing.T) {
	fs, err := Parse(strings.NewReader(stream))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(fs) != 2 {
		t.Fatalf("want 2 findings, got %d: %+v", len(fs), fs)
	}
	// Sorted by position: cmd/anonexplore before internal/explore.
	f := fs[0]
	if f.Analyzer != "exitcode" || f.Package != "anonshm/cmd/anonexplore" {
		t.Errorf("finding 0 attribution wrong: %+v", f)
	}
	if got := f.File("/repo"); got != "cmd/anonexplore/main.go" {
		t.Errorf("File: got %q", got)
	}
	if f.Line() != 142 || f.Col() != 11 {
		t.Errorf("Line/Col: got %d:%d, want 142:11", f.Line(), f.Col())
	}
	if len(f.SuggestedFixes) != 1 || f.SuggestedFixes[0].Edits[0].New != "exitcode.Usage" {
		t.Errorf("suggested fix not carried through: %+v", f.SuggestedFixes)
	}
	if fs[1].Analyzer != "determinism" || fs[1].Line() != 33 {
		t.Errorf("finding 1 wrong: %+v", fs[1])
	}
}

func TestParseAnalyzerError(t *testing.T) {
	in := `{"p": {"taint": {"error": "internal error: oh no"}}}`
	fs, err := Parse(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "oh no") {
		t.Fatalf("want analyzer error surfaced, got findings=%v err=%v", fs, err)
	}
}

func TestParseTrailingGarbage(t *testing.T) {
	in := "{}\ncan't load package: broken\n"
	_, err := Parse(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "broken") {
		t.Fatalf("want non-JSON output surfaced, got %v", err)
	}
}

func TestApplyFixes(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "main.go")
	src := "package main\n\nfunc main() { exit(2); exit(1) }\n"
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	two := strings.Index(src, "2")
	one := strings.Index(src, "1")
	fs := []Finding{
		{Analyzer: "exitcode", Diagnostic: Diagnostic{
			Posn: file + ":3:1",
			SuggestedFixes: []SuggestedFix{{Edits: []TextEdit{
				{Filename: file, Start: two, End: two + 1, New: "exitcode.Usage"},
			}}},
		}},
		{Analyzer: "exitcode", Diagnostic: Diagnostic{
			Posn: file + ":3:2",
			SuggestedFixes: []SuggestedFix{{Edits: []TextEdit{
				{Filename: file, Start: one, End: one + 1, New: "exitcode.Error"},
			}}},
		}},
	}
	changed, err := ApplyFixes(fs)
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	if len(changed) != 1 || changed[0] != file {
		t.Fatalf("changed = %v", changed)
	}
	got, _ := os.ReadFile(file)
	want := "package main\n\nfunc main() { exit(exitcode.Usage); exit(exitcode.Error) }\n"
	if string(got) != want {
		t.Errorf("after fixes:\n%s\nwant:\n%s", got, want)
	}
}

func TestApplyFixesRejectsOverlap(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "x.go")
	if err := os.WriteFile(file, []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs := []Finding{{Diagnostic: Diagnostic{SuggestedFixes: []SuggestedFix{{Edits: []TextEdit{
		{Filename: file, Start: 2, End: 6, New: "a"},
		{Filename: file, Start: 4, End: 8, New: "b"},
	}}}}}}
	if _, err := ApplyFixes(fs); err == nil || !strings.Contains(err.Error(), "overlapping") {
		t.Fatalf("want overlap error, got %v", err)
	}
	got, _ := os.ReadFile(file)
	if string(got) != "0123456789" {
		t.Errorf("file modified despite overlap: %q", got)
	}
}

func TestBaselineFilterAndRoundTrip(t *testing.T) {
	mk := func(analyzer, posn, msg string) Finding {
		return Finding{Analyzer: analyzer, Diagnostic: Diagnostic{Posn: posn, Message: msg}}
	}
	findings := []Finding{
		mk("taint", "/repo/internal/canon/canon.go:10:2", "identity flows"),
		mk("taint", "/repo/internal/canon/canon.go:99:2", "identity flows"), // same key, second occurrence
		mk("waitfree", "/repo/internal/core/snapshot.go:40:2", "unbounded loop"),
	}
	b := &Baseline{Findings: []BaselineEntry{
		{Analyzer: "taint", File: "internal/canon/canon.go", Message: "identity flows", Count: 1},
	}}
	fresh, tolerated := b.Filter(findings, "/repo")
	if len(tolerated) != 1 || len(fresh) != 2 {
		t.Fatalf("Filter: fresh=%d tolerated=%d", len(fresh), len(tolerated))
	}
	// Line moves must not invalidate the baseline: same file+message at a
	// different line is still the tolerated finding.
	if tolerated[0].Line() != 10 {
		t.Errorf("tolerated the wrong occurrence: %+v", tolerated[0])
	}

	// Round-trip: a baseline written from findings absorbs them all.
	dir := t.TempDir()
	path := filepath.Join(dir, "lint-baseline.json")
	if err := NewBaseline(findings, "/repo").Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	fresh, tolerated = loaded.Filter(findings, "/repo")
	if len(fresh) != 0 || len(tolerated) != 3 {
		t.Errorf("round-trip: fresh=%d tolerated=%d, want 0/3", len(fresh), len(tolerated))
	}
}

func TestLoadBaselineMissingFile(t *testing.T) {
	b, err := LoadBaseline(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil || len(b.Findings) != 0 {
		t.Fatalf("missing baseline must load empty: %v, %+v", err, b)
	}
}

// TestApplyFixesCollapsesIdenticalEdits: two findings in one file may
// each carry the same insertion (e.g. "add the exitcode import");
// byte-identical edits must apply once, not twice or as an overlap.
func TestApplyFixesCollapsesIdenticalEdits(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "main.go")
	src := "package main\nimport \"os\"\nfunc main() { os.Exit(2); os.Exit(1) }\n"
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	imp := strings.Index(src, "func")
	importEdit := TextEdit{Filename: file, Start: imp, End: imp, New: "import \"anonshm/internal/exitcode\"\n"}
	two := strings.Index(src, "2")
	one := strings.Index(src, "1")
	fs := []Finding{
		{Diagnostic: Diagnostic{SuggestedFixes: []SuggestedFix{{Edits: []TextEdit{
			{Filename: file, Start: two, End: two + 1, New: "exitcode.Usage"}, importEdit,
		}}}}},
		{Diagnostic: Diagnostic{SuggestedFixes: []SuggestedFix{{Edits: []TextEdit{
			{Filename: file, Start: one, End: one + 1, New: "exitcode.Error"}, importEdit,
		}}}}},
	}
	if _, err := ApplyFixes(fs); err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	got, _ := os.ReadFile(file)
	want := "package main\nimport \"os\"\nimport \"anonshm/internal/exitcode\"\nfunc main() { os.Exit(exitcode.Usage); os.Exit(exitcode.Error) }\n"
	if string(got) != want {
		t.Errorf("after fixes:\n%s\nwant:\n%s", got, want)
	}
}
