// Package vetjson consumes the machine-readable output of
// "go vet -json -vettool=anonlint": the stream of "# package" comment
// lines and per-package JSON objects that the vet driver prints on
// stderr. It flattens the stream into Findings, applies the suggested
// fixes the analyzers attach (anonlint -fix), and diffs findings
// against a committed baseline (anonlint -baseline), which is how a
// legacy finding is tolerated without being blanket-suppressed in
// source.
//
// The JSON shape mirrors x/tools' analysisflags: each object maps
// package path → analyzer name → either a list of diagnostics or an
// {"error": ...} object.
package vetjson

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"strings"
)

// TextEdit is one byte-range replacement; Start and End are zero-based
// half-open offsets into the original file bytes.
type TextEdit struct {
	Filename string `json:"filename"`
	Start    int    `json:"start"`
	End      int    `json:"end"`
	New      string `json:"new"`
}

// SuggestedFix is one self-contained rewrite for a finding.
type SuggestedFix struct {
	Message string     `json:"message"`
	Edits   []TextEdit `json:"edits"`
}

// Diagnostic mirrors analysisflags.JSONDiagnostic.
type Diagnostic struct {
	Category       string         `json:"category,omitempty"`
	Posn           string         `json:"posn"` // "file.go:line:col"
	Message        string         `json:"message"`
	SuggestedFixes []SuggestedFix `json:"suggested_fixes,omitempty"`
}

// Finding is one diagnostic with its package and analyzer attached.
type Finding struct {
	Package  string
	Analyzer string
	Diagnostic
}

// File returns the file part of the finding's position, relative to dir
// when possible (dir "" means leave absolute).
func (f Finding) File(dir string) string {
	file := f.Posn
	// Trim ":line:col" / ":line" — split from the right so Windows-style
	// drive letters or embedded colons in the path survive.
	for range 2 {
		i := strings.LastIndexByte(file, ':')
		if i < 0 {
			break
		}
		if allDigits(file[i+1:]) {
			file = file[:i]
		} else {
			break
		}
	}
	if dir != "" {
		if rel, err := filepath.Rel(dir, file); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(file)
}

// Line returns the line number from the finding's "file:line:col" (or
// "file:line") position, or 0 when there is none.
func (f Finding) Line() int { l, _ := f.lineCol(); return l }

// Col returns the column number, or 0 when the position has none.
func (f Finding) Col() int { _, c := f.lineCol(); return c }

func (f Finding) lineCol() (line, col int) {
	parts := strings.Split(f.Posn, ":")
	n := len(parts)
	if n >= 3 && allDigits(parts[n-1]) && allDigits(parts[n-2]) {
		return atoi(parts[n-2]), atoi(parts[n-1])
	}
	if n >= 2 && allDigits(parts[n-1]) {
		return atoi(parts[n-1]), 0
	}
	return 0, 0
}

func allDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

func atoi(s string) int {
	n := 0
	for _, r := range s {
		n = n*10 + int(r-'0')
	}
	return n
}

// Parse reads a go vet -json stream: "#"-prefixed comment lines
// interleaved with JSON objects. Analyzer-level {"error": ...} entries
// become returned errors; any trailing non-JSON text (e.g. compiler
// output from a broken package) is surfaced as an error too.
func Parse(r io.Reader) ([]Finding, error) {
	var b strings.Builder
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(strings.TrimSpace(line), "#") {
			continue
		}
		b.WriteString(line)
		b.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	var findings []Finding
	var errs []error
	dec := json.NewDecoder(strings.NewReader(b.String()))
	for {
		var obj map[string]map[string]json.RawMessage
		if err := dec.Decode(&obj); err == io.EOF {
			break
		} else if err != nil {
			rest := strings.TrimSpace(b.String()[offsetOf(dec):])
			if rest != "" {
				errs = append(errs, fmt.Errorf("non-JSON vet output: %s", firstLines(rest, 5)))
			} else {
				errs = append(errs, err)
			}
			break
		}
		for pkg, byAnalyzer := range obj {
			for analyzer, raw := range byAnalyzer {
				var diags []Diagnostic
				if err := json.Unmarshal(raw, &diags); err == nil {
					for _, d := range diags {
						findings = append(findings, Finding{Package: pkg, Analyzer: analyzer, Diagnostic: d})
					}
					continue
				}
				var e struct {
					Err string `json:"error"`
				}
				if err := json.Unmarshal(raw, &e); err == nil && e.Err != "" {
					errs = append(errs, fmt.Errorf("%s: analyzer %s: %s", pkg, analyzer, e.Err))
					continue
				}
				errs = append(errs, fmt.Errorf("%s: analyzer %s: unrecognized payload", pkg, analyzer))
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].Posn != findings[j].Posn {
			return findings[i].Posn < findings[j].Posn
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, errors.Join(errs...)
}

func offsetOf(dec *json.Decoder) int {
	if o := dec.InputOffset(); o > 0 {
		return int(o)
	}
	return 0
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}

// ApplyFixes applies every suggested fix in findings to the files on
// disk, returning the set of files rewritten. Overlapping edits within
// one file are an error — no partial application happens for that file.
func ApplyFixes(findings []Finding) ([]string, error) {
	byFile := map[string][]TextEdit{}
	for _, f := range findings {
		for _, fix := range f.SuggestedFixes {
			for _, e := range fix.Edits {
				byFile[e.Filename] = append(byFile[e.Filename], e)
			}
		}
	}
	var changed []string
	var errs []error
	for file, edits := range byFile {
		if err := applyFile(file, edits); err != nil {
			errs = append(errs, err)
			continue
		}
		changed = append(changed, file)
	}
	sort.Strings(changed)
	return changed, errors.Join(errs...)
}

func applyFile(file string, edits []TextEdit) error {
	src, err := os.ReadFile(file)
	if err != nil {
		return err
	}
	sort.Slice(edits, func(i, j int) bool { return edits[i].Start > edits[j].Start })
	// Distinct findings may carry byte-identical edits (e.g. two fixes
	// in one file each inserting the same import); collapse them so
	// they neither double-apply nor read as an overlap.
	edits = slices.CompactFunc(edits, func(a, b TextEdit) bool {
		return a.Start == b.Start && a.End == b.End && a.New == b.New
	})
	for i, e := range edits {
		if e.Start < 0 || e.End < e.Start || e.End > len(src) {
			return fmt.Errorf("%s: edit [%d,%d) outside file of %d bytes", file, e.Start, e.End, len(src))
		}
		if i > 0 && edits[i-1].Start < e.End {
			return fmt.Errorf("%s: overlapping suggested fixes at offsets %d and %d", file, e.Start, edits[i-1].Start)
		}
		src = append(src[:e.Start], append([]byte(e.New), src[e.End:]...)...)
	}
	info, err := os.Stat(file)
	if err != nil {
		return err
	}
	return os.WriteFile(file, src, info.Mode().Perm())
}

// Baseline is the committed set of tolerated findings: the escape hatch
// for legacy debt that must not become a blanket source suppression.
// Keys are line-number-free (analyzer, file, message) triples with an
// occurrence count, so unrelated edits moving a finding up or down a
// file do not invalidate the baseline, while any new finding — even an
// identical message in a different file — still fails the gate.
type Baseline struct {
	Findings []BaselineEntry `json:"findings"`
}

// BaselineEntry tolerates Count occurrences of one (analyzer, file,
// message) triple.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

func key(analyzer, file, message string) string {
	return analyzer + "\x00" + file + "\x00" + message
}

// LoadBaseline reads a baseline file. A missing file is an empty
// baseline, so bootstrapping needs no special case.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &b, nil
}

// NewBaseline builds a baseline covering exactly the given findings,
// with files made relative to dir.
func NewBaseline(findings []Finding, dir string) *Baseline {
	counts := map[string]*BaselineEntry{}
	var order []string
	for _, f := range findings {
		k := key(f.Analyzer, f.File(dir), f.Message)
		if e, ok := counts[k]; ok {
			e.Count++
			continue
		}
		counts[k] = &BaselineEntry{Analyzer: f.Analyzer, File: f.File(dir), Message: f.Message, Count: 1}
		order = append(order, k)
	}
	sort.Strings(order)
	b := &Baseline{Findings: []BaselineEntry{}}
	for _, k := range order {
		b.Findings = append(b.Findings, *counts[k])
	}
	return b
}

// Save writes the baseline as stable, diff-friendly JSON.
func (b *Baseline) Save(path string) error {
	if b.Findings == nil {
		b.Findings = []BaselineEntry{}
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Filter splits findings into (new, tolerated): each baseline entry
// absorbs up to Count matching findings; everything else is new.
func (b *Baseline) Filter(findings []Finding, dir string) (fresh, tolerated []Finding) {
	budget := map[string]int{}
	for _, e := range b.Findings {
		budget[key(e.Analyzer, e.File, e.Message)] += e.Count
	}
	for _, f := range findings {
		k := key(f.Analyzer, f.File(dir), f.Message)
		if budget[k] > 0 {
			budget[k]--
			tolerated = append(tolerated, f)
			continue
		}
		fresh = append(fresh, f)
	}
	return fresh, tolerated
}
