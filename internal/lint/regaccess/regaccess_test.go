package regaccess_test

import (
	"testing"

	"anonshm/internal/lint/linttest"
	"anonshm/internal/lint/regaccess"
)

// TestGolden checks the three finding kinds and both negatives: in the
// non-allowlisted algo package the omniscient Memory methods, the ghost
// last-writer fields and direct []anonmem.Word indexing are flagged
// while Read/Write are not; the allowlisted anonmem and internal/trace
// packages use all of it freely with zero findings.
func TestGolden(t *testing.T) {
	linttest.Run(t, "testdata", regaccess.Analyzer, "algo", "internal/anonmem", "internal/trace")
}
