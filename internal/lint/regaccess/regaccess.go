// Package regaccess implements the anonlint/regaccess analyzer.
//
// In the fully-anonymous model (PAPER.md §2) a processor can touch the
// shared memory only through its private wiring permutation — the
// anonmem Read/Write API. Everything else anonmem exposes is ghost
// state for the omniscient observer: global register contents (CellAt,
// Cells), wiring introspection (Global, Wiring) and last-writer
// tracking (LastWriterAt, LastWrittenBy, ReadResult.LastWriter,
// WriteResult.PrevWriter). The paper's analyses (reads-from relations,
// Lemma 4.5/4.6, the §2.1 lower bound) are phrased in terms of that
// ghost state, so analysis code needs it — but algorithm code using it
// would silently leave the model.
//
// The analyzer therefore restricts the omniscient surface to an explicit
// allowlist of analysis packages (-allow) and flags, everywhere else:
//
//   - calls to the omniscient anonmem.Memory methods;
//   - reads of the ghost identity fields ReadResult.LastWriter and
//     WriteResult.PrevWriter;
//   - direct indexing of register-cell slices ([]anonmem.Word), which
//     addresses registers by global index and bypasses the wiring.
package regaccess

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"

	"anonshm/internal/lint/lintutil"
)

// DefaultAllow lists the packages allowed to use the omniscient
// inspection API: the memory implementations (anonmem and the runtime's
// linearizable register file), the system executor, and the
// analysis/observer layers that implement the paper's ghost-state
// arguments and trace rendering.
const DefaultAllow = "internal/anonmem,internal/machine,internal/runtime,internal/explore," +
	"internal/sched,internal/trace,internal/lemmas,internal/stableview,internal/canon,cmd/figures"

// omniscient is the set of anonmem.Memory methods that reveal global
// register identity or ghost last-writer state.
var omniscient = map[string]bool{
	"CellAt": true, "Cells": true, "LastWriterAt": true,
	"LastWrittenBy": true, "Global": true, "Wiring": true,
}

var allow string

const name = "regaccess"

// Analyzer is the anonlint/regaccess analyzer.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "restrict shared-register access to the anonmem Read/Write API outside analysis packages\n\n" +
		"Algorithm code must address registers only through its private wiring permutation; " +
		"the omniscient inspection methods (CellAt, Cells, LastWriterAt, LastWrittenBy, Global, " +
		"Wiring) and the ghost last-writer fields exist solely for the observer-side analyses.",
	Run: run,
}

func init() {
	Analyzer.Flags.StringVar(&allow, "allow", DefaultAllow,
		"comma-separated package path suffixes allowed to use the omniscient register-inspection API")
}

func run(pass *analysis.Pass) (any, error) {
	if lintutil.MatchPackage(pass.Pkg.Path(), allow) {
		return nil, nil
	}
	rep := lintutil.NewReporter(pass, name)
	lintutil.WalkFiles(pass, func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, rep, n)
			case *ast.SelectorExpr:
				checkGhostField(pass, rep, n)
			case *ast.IndexExpr:
				checkIndex(pass, rep, n)
			}
			return true
		})
	})
	return nil, nil
}

func checkCall(pass *analysis.Pass, rep *lintutil.Reporter, call *ast.CallExpr) {
	fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	if !omniscient[fn.Name()] || !lintutil.NamedFrom(sig.Recv().Type(), "anonmem", "Memory") {
		return
	}
	rep.Reportf(call.Pos(),
		"anonmem.Memory.%s is omniscient-observer inspection; algorithm code must reach registers only through Read/Write on its private wiring (add the package to -regaccess.allow if this is analysis code)",
		fn.Name())
}

// ghostFields maps (owner struct, field) pairs that expose writer
// identity — ghost state excluded from the model's register contents.
var ghostFields = map[[2]string]string{
	{"ReadResult", "LastWriter"}:  "anonmem",
	{"WriteResult", "PrevWriter"}: "anonmem",
}

func checkGhostField(pass *analysis.Pass, rep *lintutil.Reporter, se *ast.SelectorExpr) {
	sel := pass.TypesInfo.Selections[se]
	if sel == nil || sel.Kind() != types.FieldVal {
		return
	}
	recv := sel.Recv()
	for {
		p, ok := recv.(*types.Pointer)
		if !ok {
			break
		}
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return
	}
	pkgBase, found := ghostFields[[2]string{named.Obj().Name(), se.Sel.Name}]
	if !found || !lintutil.FromPackage(named.Obj(), pkgBase) {
		return
	}
	rep.Reportf(se.Sel.Pos(),
		"%s.%s is ghost last-writer state; writer identity is invisible in the fully-anonymous model and may only inform observer-side analyses",
		named.Obj().Name(), se.Sel.Name)
}

func checkIndex(pass *analysis.Pass, rep *lintutil.Reporter, ix *ast.IndexExpr) {
	t := pass.TypesInfo.TypeOf(ix.X)
	if t == nil {
		return
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok || !lintutil.NamedFrom(sl.Elem(), "anonmem", "Word") {
		return
	}
	rep.Reportf(ix.Pos(),
		"direct indexing of a register-cell slice addresses registers by global index, bypassing the wiring permutation; use anonmem Read/Write")
}
