// Package trace is an allowlisted analysis package: the omniscient API
// and ghost fields are exactly what trace rendering needs, so nothing
// here is flagged.
package trace

import "internal/anonmem"

// Render walks the global register state the observer-side way.
func Render(mem *anonmem.Memory) []int {
	var writers []int
	for g := range mem.Cells() {
		writers = append(writers, mem.LastWriterAt(g))
	}
	return writers
}

// LastWriter surfaces the ghost identity for a trace line.
func LastWriter(r anonmem.ReadResult) int { return r.LastWriter }
