// Package anonmem is a self-contained stub of the repo's register file:
// the model-facing Read/Write API plus the omniscient observer surface
// the regaccess analyzer restricts. Its import path suffix matches the
// default allowlist, so its own direct cell indexing is permitted.
package anonmem

// Word is the register value type.
type Word uint64

// ReadResult carries the read value plus ghost last-writer identity.
type ReadResult struct {
	Value      Word
	LastWriter int
}

// WriteResult carries the ghost identity of the displaced writer.
type WriteResult struct {
	PrevWriter int
}

// Memory is the shared register file.
type Memory struct {
	cells   []Word
	writers []int
}

// New allocates m registers.
func New(m int) *Memory {
	return &Memory{cells: make([]Word, m), writers: make([]int, m)}
}

// Read is the model-facing read.
func (m *Memory) Read(i int) ReadResult {
	return ReadResult{Value: m.cells[i], LastWriter: m.writers[i]}
}

// Write is the model-facing write.
func (m *Memory) Write(i int, v Word) WriteResult {
	prev := m.writers[i]
	m.cells[i] = v
	return WriteResult{PrevWriter: prev}
}

// The omniscient observer surface.

func (m *Memory) CellAt(g int) Word      { return m.cells[g] }
func (m *Memory) Cells() []Word          { return m.cells }
func (m *Memory) LastWriterAt(g int) int { return m.writers[g] }
func (m *Memory) Global(p, i int) int    { return i }
func (m *Memory) Wiring(p int) []int     { return nil }
