// Package algo is a register-access fixture: an algorithm-layer package
// (not on the -allow list) that must reach shared memory only through
// the anonmem Read/Write API.
package algo

import "internal/anonmem"

// Step uses only the model-facing API — no findings.
func Step(mem *anonmem.Memory, slot int, v anonmem.Word) anonmem.Word {
	mem.Write(slot, v)
	r := mem.Read(slot)
	return r.Value
}

// Peek reaches for the omniscient surface — flagged.
func Peek(mem *anonmem.Memory, g int) anonmem.Word {
	return mem.CellAt(g) // want `anonmem\.Memory\.CellAt is omniscient-observer inspection`
}

// Dump too.
func Dump(mem *anonmem.Memory) []anonmem.Word {
	return mem.Cells() // want `anonmem\.Memory\.Cells is omniscient-observer inspection`
}

// Who reads the ghost last-writer identity off a read — flagged.
func Who(mem *anonmem.Memory, slot int) int {
	r := mem.Read(slot)
	return r.LastWriter // want `ReadResult\.LastWriter is ghost last-writer state`
}

// Displaced reads the ghost identity off a write — flagged.
func Displaced(mem *anonmem.Memory, slot int, v anonmem.Word) int {
	w := mem.Write(slot, v)
	return w.PrevWriter // want `WriteResult\.PrevWriter is ghost last-writer state`
}

// ByIndex addresses registers by global index, bypassing the wiring —
// flagged.
func ByIndex(cells []anonmem.Word) anonmem.Word {
	return cells[0] // want `direct indexing of a register-cell slice`
}
