// Package lint assembles the anonlint analyzer suite: the static
// encoding of this repository's model invariants.
//
// The fully-anonymous shared-memory model (PAPER.md §2) is a discipline,
// not a type: nothing in Go stops an algorithm from branching on a
// processor index, peeking at ghost register state, or introducing
// map-iteration nondeterminism that silently breaks replayable traces.
// The suite turns those modeling errors into compile-time findings:
//
//   - anonlint/anonymity — machines run identical code: no processor
//     identity in machine implementations (PAPER.md §2);
//   - anonlint/regaccess — shared registers are reached only through the
//     anonmem Read/Write API; omniscient inspection is for analysis
//     packages (PAPER.md §2, §4);
//   - anonlint/determinism — no map iteration, time.Now or global
//     math/rand on exploration paths (replayable traces, cross-engine
//     state-count equality, EXPERIMENTS.md E14);
//   - anonlint/fpwidth — dynamic single-bit shifts are guarded against
//     the 64-register fingerprint-word limit (anonshm.New's M ≤ 64).
//
// Findings are suppressed line-by-line with
// "//lint:ignore anonlint/<name> reason"; see lintutil.
//
// Run the suite with "make lint", "go run ./cmd/anonlint ./...", or
// "go vet -vettool=$(which anonlint) ./...".
package lint

import (
	"golang.org/x/tools/go/analysis"

	"anonshm/internal/lint/anonymity"
	"anonshm/internal/lint/determinism"
	"anonshm/internal/lint/fpwidth"
	"anonshm/internal/lint/regaccess"
)

// Suite returns the anonlint analyzers in reporting order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		anonymity.Analyzer,
		regaccess.Analyzer,
		determinism.Analyzer,
		fpwidth.Analyzer,
	}
}
