// Package lint assembles the anonlint analyzer suite: the static
// encoding of this repository's model invariants.
//
// The fully-anonymous shared-memory model (PAPER.md §2) is a discipline,
// not a type: nothing in Go stops an algorithm from branching on a
// processor index, peeking at ghost register state, or introducing
// map-iteration nondeterminism that silently breaks replayable traces.
// The suite turns those modeling errors into compile-time findings:
//
//   - anonlint/anonymity — machines run identical code: no processor
//     identity in machine implementations (PAPER.md §2);
//   - anonlint/regaccess — shared registers are reached only through the
//     anonmem Read/Write API; omniscient inspection is for analysis
//     packages (PAPER.md §2, §4);
//   - anonlint/determinism — no map iteration, time.Now or global
//     math/rand on exploration paths (replayable traces, cross-engine
//     state-count equality, EXPERIMENTS.md E14);
//   - anonlint/fpwidth — dynamic single-bit shifts are guarded against
//     the 64-register fingerprint-word limit (anonshm.New's M ≤ 64);
//   - anonlint/taint — interprocedural identity dataflow: processor
//     indices, ghost writer fields, wiring permutations and crash masks
//     must never reach machine state or fingerprint inputs, no matter
//     how many helpers, closures or composite literals they pass
//     through on the way (the deep version of anonymity's shape checks);
//   - anonlint/waitfree — every loop reachable from a machine's
//     Pending/Advance/Done has a statically bounded trip count, or a
//     "//lint:bound reason" justification;
//   - anonlint/exitcode — cmd/* binaries exit only through the
//     internal/exitcode constants (0 OK … 5 Stalled), keeping the
//     script-visible exit convention single-sourced.
//
// Findings are suppressed line-by-line with
// "//lint:ignore anonlint/<name> reason"; see lintutil. Legacy findings
// can instead be tolerated via the committed lint-baseline.json
// (anonlint -baseline), which names each finding individually.
//
// Run the suite with "make lint", "go run ./cmd/anonlint ./...", or
// "go vet -vettool=$(which anonlint) ./...". "anonlint -sarif" emits
// SARIF 2.1.0 for CI code-scanning; "anonlint -fix" applies the
// analyzers' suggested fixes.
package lint

import (
	"golang.org/x/tools/go/analysis"

	"anonshm/internal/lint/anonymity"
	"anonshm/internal/lint/determinism"
	"anonshm/internal/lint/exitcode"
	"anonshm/internal/lint/fpwidth"
	"anonshm/internal/lint/regaccess"
	"anonshm/internal/lint/taint"
	"anonshm/internal/lint/waitfree"
)

// Suite returns the anonlint analyzers in reporting order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		anonymity.Analyzer,
		regaccess.Analyzer,
		determinism.Analyzer,
		fpwidth.Analyzer,
		taint.Analyzer,
		waitfree.Analyzer,
		exitcode.Analyzer,
	}
}
