package consensus

import (
	"fmt"
	"math/rand"
	"testing"

	"anonshm/internal/anonmem"
	"anonshm/internal/machine"
	"anonshm/internal/sched"
	"anonshm/internal/tasks"
	"anonshm/internal/view"
)

func TestEncodeDecodePair(t *testing.T) {
	for _, c := range []struct {
		v  string
		ts int
	}{{"a", 0}, {"value-with-dashes", 17}, {"", 3}} {
		label := EncodePair(c.v, c.ts)
		v, ts, err := DecodePair(label)
		if err != nil {
			t.Fatal(err)
		}
		if v != c.v || ts != c.ts {
			t.Errorf("round trip (%q,%d) -> (%q,%d)", c.v, c.ts, v, ts)
		}
	}
	if _, _, err := DecodePair("no-separator"); err == nil {
		t.Error("bad label accepted")
	}
	if _, _, err := DecodePair("v" + pairSep + "notanint"); err == nil {
		t.Error("bad timestamp accepted")
	}
}

func TestNewRejectsSeparator(t *testing.T) {
	in := view.NewInterner()
	if _, err := New(in, 2, 2, "bad"+pairSep+"value", false); err == nil {
		t.Error("input with separator accepted")
	}
}

func TestConsensusSoloDecidesOwnValue(t *testing.T) {
	sys, _, err := NewSystem(Config{Inputs: []string{"v"}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sched.Run(sys, sched.NewSolo(1), 10000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != sched.StopAllDone {
		t.Fatalf("solo consensus did not decide: %+v", res)
	}
	vals, done := Decisions(sys)
	if !done[0] || vals[0] != "v" {
		t.Errorf("decision = %v %v", vals, done)
	}
}

func TestConsensusObstructionFreeSequential(t *testing.T) {
	// Processors run one after the other: every one must decide, and all
	// must decide the first processor's value (it reaches a lead of 2
	// before anyone else moves).
	inputs := []string{"b", "a", "c"}
	sys, _, err := NewSystem(Config{Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sched.Run(sys, sched.NewSolo(3), 100000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != sched.StopAllDone {
		t.Fatalf("sequential consensus did not finish: %+v", res)
	}
	vals, done := Decisions(sys)
	for p := range vals {
		if !done[p] || vals[p] != "b" {
			t.Errorf("p%d decided %q, want %q", p, vals[p], "b")
		}
	}
	e := tasks.Execution{Groups: inputs}
	outs := make([]tasks.ConsensusOutput, len(vals))
	for i := range vals {
		outs[i] = tasks.ConsensusOutput{Value: vals[i], Done: done[i]}
	}
	if err := tasks.CheckGroupConsensus(e, outs); err != nil {
		t.Error(err)
	}
}

func TestConsensusContentionThenSolo(t *testing.T) {
	// An adversarial (random/covering) prefix followed by solo runs:
	// obstruction-freedom says everyone then decides; agreement and
	// validity must hold.
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		values := []string{"x", "y", "z"}
		inputs := make([]string, n)
		for i := range inputs {
			inputs[i] = values[rng.Intn(len(values))]
		}
		sys, _, err := NewSystem(Config{
			Inputs:  inputs,
			Wirings: anonmem.RandomWirings(rng, n, n),
		})
		if err != nil {
			t.Fatal(err)
		}
		q := &sched.Seq{Phases: []sched.Phase{
			{S: &sched.Random{Rng: rng}, Steps: rng.Intn(500)},
			{S: sched.NewSolo(n), Steps: -1},
		}}
		res, err := sched.Run(sys, q, 1_000_000, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Reason != sched.StopAllDone {
			t.Fatalf("seed %d: consensus did not finish: %+v", seed, res)
		}
		vals, done := Decisions(sys)
		outs := make([]tasks.ConsensusOutput, n)
		for i := range outs {
			outs[i] = tasks.ConsensusOutput{Value: vals[i], Done: done[i]}
		}
		e := tasks.Execution{Groups: inputs}
		if err := tasks.CheckGroupConsensusBrute(e, outs); err != nil {
			t.Errorf("seed %d: %v (inputs=%v decisions=%v)", seed, err, inputs, vals)
		}
	}
}

func TestConsensusAgreementNeverViolatedMidRun(t *testing.T) {
	// Even in runs that do not finish (obstruction-free, not wait-free),
	// any decisions that do occur must agree and be valid.
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		values := []string{"x", "y"}
		inputs := make([]string, n)
		for i := range inputs {
			inputs[i] = values[rng.Intn(len(values))]
		}
		sys, _, err := NewSystem(Config{
			Inputs:  inputs,
			Wirings: anonmem.RandomWirings(rng, n, n),
			Nondet:  true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sched.Run(sys, &sched.Random{Rng: rng, ChoiceRandom: true}, 5000, nil); err != nil {
			t.Fatal(err)
		}
		vals, done := Decisions(sys)
		decided := ""
		for p := range vals {
			if !done[p] {
				continue
			}
			valid := false
			for _, v := range inputs {
				if vals[p] == v {
					valid = true
				}
			}
			if !valid {
				t.Errorf("seed %d: p%d decided non-input %q", seed, p, vals[p])
			}
			if decided == "" {
				decided = vals[p]
			} else if vals[p] != decided {
				t.Errorf("seed %d: disagreement %q vs %q", seed, decided, vals[p])
			}
		}
	}
}

func TestConsensusRoundRobinOftenDecides(t *testing.T) {
	// Round-robin is not guaranteed to decide (only obstruction-free),
	// but with identity wirings it converges quickly in practice; verify
	// agreement when it does.
	sys, _, err := NewSystem(Config{Inputs: []string{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sched.Run(sys, &sched.RoundRobin{}, 200000, nil)
	if err != nil {
		t.Fatal(err)
	}
	vals, done := Decisions(sys)
	if res.Reason == sched.StopAllDone {
		if vals[0] != vals[1] {
			t.Errorf("disagreement: %v", vals)
		}
	}
	_ = done
}

func TestConsensusRoundsAndAccessors(t *testing.T) {
	sys, _, err := NewSystem(Config{Inputs: []string{"v", "w"}})
	if err != nil {
		t.Fatal(err)
	}
	c := sys.Procs[0].(*Consensus)
	if c.Preference() != "v" || c.Timestamp() != 0 || c.Rounds() != 0 {
		t.Errorf("initial state: pref=%q ts=%d rounds=%d", c.Preference(), c.Timestamp(), c.Rounds())
	}
	if _, err := sched.Run(sys, sched.NewSolo(2), 100000, nil); err != nil {
		t.Fatal(err)
	}
	if c.Rounds() == 0 {
		t.Error("no rounds recorded")
	}
}

func TestConsensusDecisionRuleFloor(t *testing.T) {
	// A processor must NOT decide before reaching timestamp 2, even when
	// it has seen no competing value: unseen processors count as
	// timestamp 0. Track the timestamp at which the solo processor
	// decides.
	sys, _, err := NewSystem(Config{Inputs: []string{"only"}})
	if err != nil {
		t.Fatal(err)
	}
	c := sys.Procs[0].(*Consensus)
	for !sys.AllDone() {
		if _, err := sys.Step(0, 0); err != nil {
			t.Fatal(err)
		}
		if c.ready && c.Timestamp() < 2 {
			t.Fatalf("decided at timestamp %d < 2", c.Timestamp())
		}
	}
}

func TestConsensusCloneIndependence(t *testing.T) {
	sys, _, err := NewSystem(Config{Inputs: []string{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	cp := sys.Clone()
	if _, err := cp.Step(0, 0); err != nil {
		t.Fatal(err)
	}
	if sys.Key() == cp.Key() {
		t.Error("clone step leaked into original")
	}
}

func TestConsensusTwoProcsScriptedAgreement(t *testing.T) {
	// Interleave two processors step by step in many deterministic
	// patterns; whenever both decide, they must agree.
	patterns := [][]int{
		{0, 1}, {0, 0, 1}, {0, 1, 1}, {0, 0, 0, 1, 1, 1}, {1, 0, 0, 1},
	}
	for pi, pat := range patterns {
		sys, _, err := NewSystem(Config{Inputs: []string{"a", "b"}, Wirings: [][]int{{0, 1}, {1, 0}}})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100000 && !sys.AllDone(); i++ {
			p := pat[i%len(pat)]
			if !sys.Enabled(p) {
				p = 1 - p
			}
			if !sys.Enabled(p) {
				break
			}
			if _, err := sys.Step(p, 0); err != nil {
				t.Fatal(err)
			}
		}
		vals, done := Decisions(sys)
		if done[0] && done[1] && vals[0] != vals[1] {
			t.Errorf("pattern %d: disagreement %v", pi, vals)
		}
	}
}

func TestPreinternPairsDeterministic(t *testing.T) {
	a, b := view.NewInterner(), view.NewInterner()
	PreinternPairs(a, []string{"x", "y"}, 2)
	PreinternPairs(b, []string{"x", "y"}, 2)
	if a.Len() != b.Len() || a.Len() != 6 {
		t.Fatalf("lens = %d %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.Label(view.ID(i)) != b.Label(view.ID(i)) {
			t.Errorf("ID %d: %q vs %q", i, a.Label(view.ID(i)), b.Label(view.ID(i)))
		}
	}
}

func TestDecisionsOnFreshSystem(t *testing.T) {
	sys, _, err := NewSystem(Config{Inputs: []string{"a"}})
	if err != nil {
		t.Fatal(err)
	}
	_, done := Decisions(sys)
	if done[0] {
		t.Error("fresh system reports decision")
	}
	var _ machine.Machine = sys.Procs[0]
}

func TestNewSystemValidation(t *testing.T) {
	if _, _, err := NewSystem(Config{}); err == nil {
		t.Error("empty accepted")
	}
	if _, _, err := NewSystem(Config{Inputs: []string{"a" + pairSep}}); err == nil {
		t.Error("separator input accepted")
	}
	if _, _, err := NewSystem(Config{Inputs: []string{"a"}, Wirings: [][]int{{9}}}); err == nil {
		t.Error("bad wiring accepted")
	}
}

func ExampleDecodePair() {
	v, ts, _ := DecodePair(EncodePair("x", 3))
	fmt.Println(v, ts)
	// Output: x 3
}
