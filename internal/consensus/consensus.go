// Package consensus implements the obstruction-free consensus algorithm of
// Section 7 (Figure 5): a derandomization, following Guerraoui and Ruppert,
// of Chandra's shared-coin algorithm, running over the long-lived variant
// of the Section 5 snapshot algorithm.
//
// Each processor maintains a preferred value (initially its input, a group
// identifier) and a monotonically increasing timestamp, and repeatedly
// invokes the long-lived snapshot with the pair (preference, timestamp) as
// input. From the returned snapshot it computes, per value, the maximum
// timestamp it appears with. It decides value v when v's maximum timestamp
// is at least 2 greater than every other value's — where a value that does
// not appear counts as timestamp 0, since a processor that has not yet
// been seen starts at timestamp 0 (without this floor, a solo processor
// could decide before anyone else wrote anything and violate agreement).
// Otherwise it adopts the value with the highest timestamp (ties broken by
// smallest label) and re-invokes with timestamp one above the maximum.
//
// All communication goes through the long-lived snapshot: the consensus
// layer never touches a register directly, exactly as the paper notes.
package consensus

import (
	"fmt"
	"strconv"
	"strings"

	"anonshm/internal/anonmem"
	"anonshm/internal/core"
	"anonshm/internal/machine"
	"anonshm/internal/view"
)

// Decision is the output word: the decided group label.
type Decision string

// Key implements anonmem.Word.
func (d Decision) Key() string { return string(d) }

var _ anonmem.Word = Decision("")

// pairSep separates value and timestamp in interned snapshot inputs. Value
// labels must not contain it.
const pairSep = "\x1f"

// EncodePair renders a (value, timestamp) snapshot input label.
func EncodePair(value string, ts int) string {
	return value + pairSep + strconv.Itoa(ts)
}

// DecodePair parses a snapshot input label back into (value, timestamp).
func DecodePair(label string) (string, int, error) {
	i := strings.LastIndex(label, pairSep)
	if i < 0 {
		return "", 0, fmt.Errorf("consensus: label %q is not a (value, timestamp) pair", label)
	}
	ts, err := strconv.Atoi(label[i+len(pairSep):])
	if err != nil {
		return "", 0, fmt.Errorf("consensus: label %q has bad timestamp: %w", label, err)
	}
	return label[:i], ts, nil
}

// Consensus is the Figure 5 machine.
type Consensus struct {
	in    *view.Interner
	snap  *core.Snapshot
	input string
	pref  string
	ts    int
	// ready means a decision was reached and the output step is pending.
	ready    bool
	done     bool
	decision string
	rounds   int
}

// New returns a consensus machine for n processors over m registers with
// the given input value (a group label, which must not contain the
// internal separator). All machines of one system must share the interner.
func New(in *view.Interner, n, m int, input string, nondet bool) (*Consensus, error) {
	if strings.Contains(input, pairSep) {
		return nil, fmt.Errorf("consensus: input %q contains the reserved separator", input)
	}
	id := in.Intern(EncodePair(input, 0))
	return &Consensus{
		in:    in,
		snap:  core.NewSnapshot(n, m, id, nondet),
		input: input,
		pref:  input,
	}, nil
}

var _ machine.Machine = (*Consensus)(nil)

// Rounds returns how many snapshot invocations have completed.
func (c *Consensus) Rounds() int { return c.rounds }

// Preference returns the current preferred value.
func (c *Consensus) Preference() string { return c.pref }

// Timestamp returns the current timestamp.
func (c *Consensus) Timestamp() int { return c.ts }

// Pending implements machine.Machine.
func (c *Consensus) Pending() []machine.Op {
	if c.done {
		return nil
	}
	if c.ready {
		return []machine.Op{{Kind: machine.OpOutput, Word: Decision(c.decision)}}
	}
	return c.snap.Pending()
}

// Advance implements machine.Machine.
func (c *Consensus) Advance(choice int, read anonmem.Word) {
	if c.done {
		panic("consensus: Advance on terminated machine")
	}
	if c.ready {
		c.done = true
		return
	}
	c.snap.Advance(choice, read)
	// When the embedded snapshot's invocation completes, absorb its output
	// step (pure local computation) and run the Figure 5 round logic.
	if !c.snap.Done() && c.snap.Pending()[0].Kind == machine.OpOutput {
		c.snap.Advance(0, nil)
		c.rounds++
		c.processSnapshot(c.snap.SnapshotView())
	}
}

// processSnapshot applies the decision/adoption rule to one snapshot.
func (c *Consensus) processSnapshot(w view.View) {
	maxTs := make(map[string]int)
	for _, id := range w.IDs() {
		label := c.in.Label(id)
		value, ts, err := DecodePair(label)
		if err != nil {
			panic(err) // unreachable: only encoded pairs enter the views
		}
		if cur, ok := maxTs[value]; !ok || ts > cur {
			maxTs[value] = ts
		}
	}
	// Decide v iff maxTs[v] ≥ maxTs[w]+2 for every other value w, with
	// absent values counting as timestamp 0 (unseen processors start at 0).
	best, second := "", -1
	bestTs := -1
	for v, t := range maxTs {
		switch {
		case t > bestTs, t == bestTs && v < best:
			if bestTs >= 0 && bestTs > second {
				second = bestTs
			}
			best, bestTs = v, t
		case t > second:
			second = t
		}
	}
	if second < 0 {
		second = 0 // no other value seen: floor at timestamp 0
	}
	if bestTs >= second+2 {
		c.decision = best
		c.ready = true
		return
	}
	// Adopt and re-invoke.
	c.pref = best
	c.ts = bestTs + 1
	c.snap.Invoke(c.in.Intern(EncodePair(c.pref, c.ts)))
}

// Done implements machine.Machine.
func (c *Consensus) Done() bool { return c.done }

// Output implements machine.Machine.
func (c *Consensus) Output() anonmem.Word {
	if !c.done {
		return nil
	}
	return Decision(c.decision)
}

// Clone implements machine.Machine. The interner is shared, matching how
// systems are built (it only grows, and labels are immutable).
func (c *Consensus) Clone() machine.Machine {
	cp := *c
	cp.snap = c.snap.CloneSnapshot()
	return &cp
}

// StateKey implements machine.Machine.
func (c *Consensus) StateKey() string {
	switch {
	case c.done:
		return "cs:d:" + c.decision
	case c.ready:
		return "cs:o:" + c.decision
	default:
		return "cs:" + c.pref + ":" + strconv.Itoa(c.ts) + ":" + c.snap.StateKey()
	}
}

// SymmetryClass identifies the machine for the symmetry-reduction layer
// (canon.Symmetric). The input value is part of the class: the adoption
// rule breaks timestamp ties by smallest label, so the algorithm is NOT
// oblivious to value identity and only equal-input processors may be
// exchanged (no canon.Relabelable).
func (c *Consensus) SymmetryClass() string {
	return "cs:" + c.snap.SymmetryClass() + ":in:" + c.input
}

// Config mirrors core.Config for building consensus systems.
type Config = core.Config

// NewSystem builds a system of consensus machines plus the shared interner.
func NewSystem(c Config) (*machine.System, *view.Interner, error) {
	if len(c.Inputs) == 0 {
		return nil, nil, fmt.Errorf("consensus: no inputs")
	}
	in := view.NewInterner()
	m := c.Registers
	if m == 0 {
		m = len(c.Inputs)
	}
	procs := make([]machine.Machine, len(c.Inputs))
	for i, label := range c.Inputs {
		cm, err := New(in, len(c.Inputs), m, label, c.Nondet)
		if err != nil {
			return nil, nil, err
		}
		procs[i] = cm
	}
	wirings := c.Wirings
	if wirings == nil {
		wirings = anonmem.IdentityWirings(len(c.Inputs), m)
	}
	mem, err := anonmem.New(m, core.EmptyCell, wirings)
	if err != nil {
		return nil, nil, err
	}
	sys, err := machine.NewSystem(mem, procs)
	if err != nil {
		return nil, nil, err
	}
	return sys, in, nil
}

// PreinternPairs interns every (value, timestamp) pair with ts ≤ maxTs in
// a fixed order. Exhaustive exploration requires this: view IDs must not
// depend on the order in which different branches first see a pair, or
// state keys would collide across semantically different states.
func PreinternPairs(in *view.Interner, values []string, maxTs int) {
	for ts := 0; ts <= maxTs; ts++ {
		for _, v := range values {
			in.Intern(EncodePair(v, ts))
		}
	}
}

// Decisions extracts the decided values of terminated machines.
func Decisions(sys *machine.System) ([]string, []bool) {
	vals := make([]string, sys.N())
	done := make([]bool, sys.N())
	for i, m := range sys.Procs {
		if !m.Done() {
			continue
		}
		d, ok := m.Output().(Decision)
		if !ok {
			continue
		}
		vals[i] = string(d)
		done[i] = true
	}
	return vals, done
}
