module anonshm

go 1.23

// Pinned to the exact revision vendored by the Go 1.24.0 toolchain
// (src/cmd/vendor), so `go build ./...` works fully offline from the
// vendor/ directory — no module download required.
require golang.org/x/tools v0.28.1-0.20250131145412-98746475647e
