module anonshm

go 1.23
