GO ?= go

.PHONY: build test vet race verify bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The explorer and runtime are the only packages with real concurrency;
# everything else is single-threaded model code, so the race detector
# runs only where it can find something.
race:
	$(GO) test -race ./internal/explore/ ./internal/runtime/

# Extended tier-1 gate: what CI (and ROADMAP.md) require before merge.
verify: build vet test race

bench:
	$(GO) test -run '^$$' -bench 'BenchmarkExplore' -benchtime 1x .
