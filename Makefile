GO ?= go

.PHONY: build test vet lint lint-sarif lint-fix race verify bench bench-report fuzz-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Model-invariant static analysis: the anonlint suite (internal/lint)
# encodes the semantic invariants plain go vet cannot see — anonymity of
# machine code (shape checks plus interprocedural taint), register-access
# discipline, replay determinism, the 64-bit fingerprint width, bounded
# loops on machine step paths, and the exit-code convention. The gate is
# the committed lint-baseline.json: any finding not individually recorded
# there fails the run (exit 3). Silence a single finding with a justified
# "//lint:ignore anonlint/<name> reason" (or "//lint:bound reason" for
# waitfree); the baseline is for legacy debt only and is empty today.
lint:
	$(GO) build -o bin/anonlint ./cmd/anonlint
	./bin/anonlint -baseline lint-baseline.json ./...

# Same sweep, plus a SARIF 2.1.0 log for CI code-scanning upload.
lint-sarif:
	$(GO) build -o bin/anonlint ./cmd/anonlint
	./bin/anonlint -baseline lint-baseline.json -sarif anonlint.sarif ./...

# Apply the analyzers' suggested fixes (e.g. exitcode's literal →
# constant rewrites) in place, then gofmt what changed.
lint-fix:
	$(GO) build -o bin/anonlint ./cmd/anonlint
	./bin/anonlint -baseline lint-baseline.json -fix ./... || true
	gofmt -w ./cmd
	$(GO) build ./...

test:
	$(GO) test ./...

# The explorer, scheduler (crash adversary) and runtime are the packages
# with real concurrency or fault injection; everything else is
# single-threaded model code, so the race detector runs only where it can
# find something. internal/canon rides along because its hashers are
# shared read-only across the parallel engine's workers, and the
# symmetry-equivalence tests in internal/explore drive exactly that
# sharing; internal/store because its visited table and frontier are the
# shared mutable state under those workers; internal/obs and its span
# tracer because metrics, histograms and trace spans are written from
# all of those goroutines at once; cmd/anonsim because the campaign
# runner's worker pool aggregates per-cell histograms across goroutines.
# -short skips the N=3 crash spaces and trims the 100-seed zoo sweep,
# which the plain test target still covers in full.
race:
	$(GO) test -race -short ./internal/explore/ ./internal/canon/ ./internal/sched/ ./internal/runtime/ ./internal/store/ ./internal/obs/ ./internal/obs/span/ ./cmd/anonsim/

# Extended tier-1 gate: what CI (and ROADMAP.md) require before merge.
verify: build vet lint test race

bench:
	$(GO) test -run '^$$' -bench 'BenchmarkExplore' -benchtime 1x .

# Short coverage-guided runs of the schedule fuzzers (internal/sched
# fuzz_test.go): fuzzer-chosen schedules cross-checked against the
# exhaustive explorer as oracle. go test accepts one -fuzz target per
# invocation, hence two lines. The seed corpora alone run under the
# plain test target; this target actually mutates for a few seconds.
fuzz-smoke:
	$(GO) test ./internal/sched/ -run '^$$' -fuzz FuzzSnapshotSchedule -fuzztime 10s
	$(GO) test ./internal/sched/ -run '^$$' -fuzz FuzzRenamingSchedule -fuzztime 10s

# Machine-readable benchmark artifacts: one report file per engine with
# sweep totals, states/sec and the full metrics snapshot, plus the
# symmetry-reduction comparison (same check at -symmetry none/proc/full).
# The N=3 rows run the same-group system with deterministic write order —
# the one N=3 snapshot space small enough to sweep untruncated (~72M
# states, ~15 min total), so the reduction ratio is exact rather than an
# artifact of per-wiring state caps. The store rows rerun the N=3
# full-symmetry sweep through both state-store tiers — in-RAM and disk
# under a 64MiB ceiling — so the out-of-core overhead and the
# states-match-exactly property are pinned as artifacts. Render reports
# back with `go run ./cmd/figures -load BENCH_dfs.json`.
bench-report:
	$(GO) run ./cmd/anonexplore -check safety -inputs a,b -engine dfs -report BENCH_dfs.json
	$(GO) run ./cmd/anonexplore -check safety -inputs a,b -engine bfs -report BENCH_bfs.json
	$(GO) run ./cmd/anonexplore -check safety -inputs a,b -engine parallel -report BENCH_parallel.json
	$(GO) run ./cmd/anonexplore -check waitfree -inputs a,b -crashes 1 -engine parallel -report BENCH_crash_parallel.json
	$(GO) run ./cmd/anonexplore -check safety -inputs a,b -engine dfs -symmetry none -report BENCH_sym_none_n2.json
	$(GO) run ./cmd/anonexplore -check safety -inputs a,b -engine dfs -symmetry proc -report BENCH_sym_proc_n2.json
	$(GO) run ./cmd/anonexplore -check safety -inputs a,b -engine dfs -symmetry full -report BENCH_sym_full_n2.json
	$(GO) run ./cmd/anonexplore -check safety -inputs g,g,g -nondet=false -engine dfs -symmetry none -report BENCH_sym_none_n3.json
	$(GO) run ./cmd/anonexplore -check safety -inputs g,g,g -nondet=false -engine dfs -wirings orbits -symmetry proc -report BENCH_sym_proc_n3.json
	$(GO) run ./cmd/anonexplore -check safety -inputs g,g,g -nondet=false -engine dfs -wirings orbits -symmetry full -report BENCH_sym_full_n3.json
	$(GO) run ./cmd/anonexplore -check safety -inputs g,g,g -nondet=false -engine dfs -wirings orbits -symmetry full -report BENCH_store_mem_n3.json
	$(GO) run ./cmd/anonexplore -check safety -inputs g,g,g -nondet=false -engine dfs -wirings orbits -symmetry full -store disk -mem 64MiB -report BENCH_store_disk_n3.json
