package anonshm

import (
	"fmt"
	"testing"
)

func TestSnapshotPublicAPI(t *testing.T) {
	for _, mode := range []string{"goroutines", "simulated"} {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			for seed := int64(0); seed < 5; seed++ {
				inputs := []string{"alice", "bob", "carol", "alice"}
				opts := []Option{WithSeed(seed)}
				if mode == "simulated" {
					opts = append(opts, Simulated())
				}
				sets, err := Snapshot(inputs, opts...)
				if err != nil {
					t.Fatal(err)
				}
				if err := VerifySnapshot(inputs, sets); err != nil {
					t.Errorf("seed %d: %v (sets=%v)", seed, err, sets)
				}
			}
		})
	}
}

func TestSnapshotSimulatedReproducible(t *testing.T) {
	inputs := []string{"a", "b", "c"}
	a, err := Snapshot(inputs, Simulated(), WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Snapshot(inputs, Simulated(), WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("same seed, different outputs: %v vs %v", a, b)
	}
}

func TestRenamePublicAPI(t *testing.T) {
	inputs := []string{"g1", "g2", "g3", "g1", "g2"}
	names, err := Rename(inputs, WithSeed(3), Simulated())
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyRenaming(inputs, names); err != nil {
		t.Errorf("%v (names=%v)", err, names)
	}
	// 3 distinct groups: bound 6.
	for i, n := range names {
		if n < 1 || n > 6 {
			t.Errorf("name[%d] = %d outside 1..6", i, n)
		}
	}
}

func TestAgreePublicAPI(t *testing.T) {
	for _, mode := range []string{"goroutines", "simulated"} {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			inputs := []string{"red", "green", "blue"}
			opts := []Option{WithSeed(9)}
			if mode == "simulated" {
				opts = append(opts, Simulated())
			}
			decision, err := Agree(inputs, opts...)
			if err != nil {
				t.Fatal(err)
			}
			if err := VerifyConsensus(inputs, decision); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := Snapshot(nil); err == nil {
		t.Error("empty inputs accepted")
	}
	if _, err := Snapshot([]string{"a"}, WithRegisters(65)); err == nil {
		t.Error("oversized registers accepted")
	}
	if _, err := Snapshot([]string{"a"}, WithWirings([][]int{{0}, {0}})); err == nil {
		t.Error("mismatched wirings accepted")
	}
	if _, err := Rename(nil); err == nil {
		t.Error("rename empty inputs accepted")
	}
	if _, err := Agree(nil); err == nil {
		t.Error("agree empty inputs accepted")
	}
}

func TestWithWiringsAndRegisters(t *testing.T) {
	inputs := []string{"x", "y"}
	// 3 registers with fixed wirings.
	sets, err := Snapshot(inputs,
		WithRegisters(3),
		WithWirings([][]int{{0, 1, 2}, {2, 0, 1}}),
		Simulated(), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySnapshot(inputs, sets); err != nil {
		t.Error(err)
	}
}

func TestVerifyHelpersDetectViolations(t *testing.T) {
	if err := VerifySnapshot([]string{"a", "b"}, [][]string{{"a"}, {"b"}}); err == nil {
		t.Error("incomparable snapshot accepted")
	}
	if err := VerifySnapshot([]string{"a"}, [][]string{{"zzz"}}); err == nil {
		t.Error("unknown value accepted")
	}
	if err := VerifySnapshot([]string{"a"}, nil); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := VerifyRenaming([]string{"a", "b"}, []int{2, 2}); err == nil {
		t.Error("cross-group name clash accepted")
	}
	if err := VerifyRenaming([]string{"a"}, []int{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := VerifyConsensus([]string{"a", "b"}, "c"); err == nil {
		t.Error("non-participating decision accepted")
	}
}

func ExampleSnapshot() {
	sets, err := Snapshot([]string{"a", "b"}, Simulated(), WithSeed(1))
	if err != nil {
		panic(err)
	}
	fmt.Println(len(sets))
	// Output: 2
}
